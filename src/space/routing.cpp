#include "space/routing.hpp"

#include "linalg/hermite.hpp"
#include "support/errors.hpp"

namespace nusys {

std::optional<Route> route_displacement(const Interconnect& net,
                                        const IntVec& displacement,
                                        i64 max_hops) {
  NUSYS_REQUIRE(displacement.dim() == net.label_dim(),
                "route_displacement: displacement dimension mismatch");
  NUSYS_REQUIRE(max_hops >= 0, "route_displacement: negative hop budget");
  if (displacement.is_zero()) {
    return Route{IntVec(net.link_count()), 0};
  }
  std::optional<Route> best;
  for (const auto& k : enumerate_nonnegative_solutions(
           net.delta(), displacement, max_hops)) {
    const i64 hops = k.l1_norm();  // k >= 0, so Σk = l1.
    if (!best || hops < best->total_hops) {
      best = Route{k, hops};
    }
  }
  return best;
}

std::vector<Route> all_routes(const Interconnect& net,
                              const IntVec& displacement, i64 max_hops) {
  NUSYS_REQUIRE(displacement.dim() == net.label_dim(),
                "all_routes: displacement dimension mismatch");
  NUSYS_REQUIRE(max_hops >= 0, "all_routes: negative hop budget");
  std::vector<Route> out;
  for (const auto& k :
       enumerate_nonnegative_solutions(net.delta(), displacement, max_hops)) {
    out.push_back(Route{k, k.l1_norm()});
  }
  return out;
}

std::optional<IntMat> route_all_dependences(
    const Interconnect& net, const std::vector<IntVec>& displacements,
    const std::vector<i64>& slacks) {
  NUSYS_REQUIRE(displacements.size() == slacks.size(),
                "route_all_dependences: one slack per displacement");
  NUSYS_REQUIRE(!displacements.empty(),
                "route_all_dependences: nothing to route");
  std::vector<IntVec> k_columns;
  k_columns.reserve(displacements.size());
  for (std::size_t j = 0; j < displacements.size(); ++j) {
    if (slacks[j] < 0) return std::nullopt;
    const auto route = route_displacement(net, displacements[j], slacks[j]);
    if (!route) return std::nullopt;
    k_columns.push_back(route->hops_per_link);
  }
  return IntMat::from_columns(k_columns);
}

}  // namespace nusys
