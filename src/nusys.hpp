// Umbrella header: the public nusys API in one include.
//
// Fine-grained headers remain the primary interface (include what you
// use); this aggregate exists for quick experiments, examples and
// downstream prototypes.
#pragma once

// Support.
#include "support/args.hpp"
#include "support/checked.hpp"
#include "support/errors.hpp"
#include "support/fraction.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

// Integer linear algebra.
#include "linalg/hermite.hpp"
#include "linalg/mat.hpp"
#include "linalg/ratmat.hpp"
#include "linalg/vec.hpp"

// Algorithm IR.
#include "ir/affine.hpp"
#include "ir/dependence.hpp"
#include "ir/domain.hpp"
#include "ir/nonuniform.hpp"
#include "ir/recurrence.hpp"

// Scheduling and space mapping.
#include "schedule/coarse.hpp"
#include "schedule/search.hpp"
#include "schedule/timing.hpp"
#include "space/allocation.hpp"
#include "space/interconnect.hpp"
#include "space/metrics.hpp"
#include "space/routing.hpp"

// Synthesis.
#include "synth/design.hpp"
#include "synth/figure_render.hpp"
#include "synth/pipeline.hpp"
#include "synth/report.hpp"
#include "synth/synthesizer.hpp"

// Chains and module systems (the paper's core contribution).
#include "chains/decompose.hpp"
#include "chains/modules_emit.hpp"
#include "chains/poset.hpp"
#include "modules/module_schedule.hpp"
#include "modules/module_space.hpp"
#include "modules/module_system.hpp"
#include "modules/pipelining.hpp"

// Problem domains.
#include "conv/convolution.hpp"
#include "conv/recurrences.hpp"
#include "conv/recursive_feasibility.hpp"
#include "dp/dp_modules.hpp"
#include "dp/problems.hpp"
#include "dp/reconstruct.hpp"
#include "dp/sequential.hpp"
#include "dp/table.hpp"
#include "dp/two_module.hpp"

// Substrate, executors, verification.
#include "designs/conv_arrays.hpp"
#include "designs/dp_array.hpp"
#include "designs/recursive_conv_array.hpp"
#include "designs/uniform_array.hpp"
#include "systolic/engine.hpp"
#include "verify/module_spacetime.hpp"
#include "verify/spacetime.hpp"
