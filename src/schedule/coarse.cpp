#include "schedule/coarse.hpp"

namespace nusys {

CoarseTiming derive_coarse_timing(const NonUniformSpec& spec,
                                  const ScheduleSearchOptions& options) {
  CoarseTiming out;
  out.core = spec.constant_core();
  NUSYS_VALIDATE(!out.core.empty(),
                 "the constant dependence core D^c is empty; the Sec. III "
                 "procedure needs at least one constant dependence to order "
                 "the computation space");
  out.search =
      find_optimal_schedules(out.core, spec.statement_domain(), options);
  return out;
}

}  // namespace nusys
