// Coarse timing functions (step 1 of the Sec. III refinement procedure).
//
// For a non-uniform spec the dependence set is not constant, but the
// intersection D^c of the per-point expanded sets is. A linear schedule
// compatible with D^c is a *lower bound* on any actual timing function of
// the statement space I^s (the paper's observation τ(i^s) >= T(i^s)); the
// paper uses it only to order reduction chains, which is exactly what the
// chains/ module consumes it for.
#pragma once

#include "ir/nonuniform.hpp"
#include "schedule/search.hpp"

namespace nusys {

/// Result of deriving the coarse timing function of a non-uniform spec.
struct CoarseTiming {
  /// The constant dependence core D^c the schedule was derived from.
  std::vector<IntVec> core;
  /// The full search result over the statement domain (all optima).
  ScheduleSearchResult search;

  /// The canonical optimal coarse schedule; throws SearchFailure when the
  /// core admits no linear schedule within the bound.
  [[nodiscard]] const LinearSchedule& schedule() const {
    return search.best();
  }
};

/// Derives the coarse timing function T : I^s -> Z of Sec. III: computes
/// D^c, then finds the makespan-optimal linear schedules compatible with it
/// over the statement domain.
[[nodiscard]] CoarseTiming derive_coarse_timing(
    const NonUniformSpec& spec, const ScheduleSearchOptions& options = {});

}  // namespace nusys
