#include "schedule/timing.hpp"

#include <limits>
#include <ostream>
#include <sstream>

#include "ir/affine.hpp"

namespace nusys {

i64 LinearSchedule::at(const IntVec& x) const {
  return checked_add(coeffs_.dot(x), offset_);
}

i64 LinearSchedule::slack(const IntVec& dependence) const {
  return coeffs_.dot(dependence);
}

bool LinearSchedule::is_feasible(const std::vector<IntVec>& deps) const {
  for (const auto& d : deps) {
    if (slack(d) <= 0) return false;
  }
  return true;
}

bool LinearSchedule::is_feasible(const DependenceSet& deps) const {
  return is_feasible(deps.vectors());
}

TimeSpan LinearSchedule::span(const IndexDomain& domain) const {
  NUSYS_REQUIRE(domain.dim() == dim(),
                "LinearSchedule::span: domain dimension mismatch");
  i64 lo = std::numeric_limits<i64>::max();
  i64 hi = std::numeric_limits<i64>::min();
  domain.for_each([&](const IntVec& p) {
    const i64 t = at(p);
    if (t < lo) lo = t;
    if (t > hi) hi = t;
  });
  NUSYS_REQUIRE(lo <= hi, "LinearSchedule::span: empty domain");
  return {lo, hi};
}

std::string LinearSchedule::to_string(
    const std::vector<std::string>& names) const {
  std::ostringstream os;
  os << "T(";
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) os << ", ";
    os << names[i];
  }
  os << ") = " << AffineExpr(coeffs_, offset_).to_string(names);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const LinearSchedule& s) {
  os << "T = " << s.coeffs();
  if (s.offset() != 0) os << " + " << s.offset();
  return os;
}

}  // namespace nusys
