#include "schedule/search.hpp"

#include <algorithm>
#include <atomic>
#include <limits>

namespace nusys {

const LinearSchedule& ScheduleSearchResult::best() const {
  if (optima.empty()) {
    throw SearchFailure(
        "no feasible linear schedule within the coefficient bound; widen "
        "the bound or restructure the recurrence (Sec. II-B)");
  }
  return optima.front();
}

StageTelemetry ScheduleSearchResult::telemetry(std::string stage) const {
  StageTelemetry t;
  t.stage = std::move(stage);
  t.examined = examined;
  t.feasible = feasible_count;
  t.pruned = pruned;
  t.workers = workers_used;
  t.wall_seconds = wall_seconds;
  return t;
}

std::vector<IntVec> coefficient_cube(std::size_t dim, i64 bound) {
  NUSYS_REQUIRE(dim >= 1, "coefficient_cube: dimension must be positive");
  NUSYS_REQUIRE(bound >= 0, "coefficient_cube: negative bound");
  std::vector<IntVec> out;
  IntVec v(dim);
  auto recurse = [&](auto&& self, std::size_t axis) -> void {
    if (axis == dim) {
      out.push_back(v);
      return;
    }
    for (i64 c = -bound; c <= bound; ++c) {
      v[axis] = c;
      self(self, axis + 1);
    }
    v[axis] = 0;
  };
  recurse(recurse, 0);
  // Canonical order: small coefficients first so ties in makespan resolve
  // to the simplest schedule, matching the paper's hand-derived choices.
  std::sort(out.begin(), out.end(), [](const IntVec& a, const IntVec& b) {
    const i64 na = a.l1_norm();
    const i64 nb = b.l1_norm();
    if (na != nb) return na < nb;
    return a < b;
  });
  return out;
}

namespace {

/// One worker's scan of a contiguous cube range, with purely local state.
struct SchedulePartial {
  i64 makespan = std::numeric_limits<i64>::max();
  std::vector<LinearSchedule> optima;  ///< Chunk-order optima at `makespan`.
  std::size_t examined = 0;
  std::size_t feasible = 0;
  std::size_t pruned = 0;
};

/// Publishes `makespan` into the cross-worker incumbent if it improves it.
/// Relaxed ordering suffices: the shared bound is a pruning hint; every
/// recorded optimum is validated against the worker-local incumbent and
/// the merge step, so a stale read only costs a little extra evaluation.
void offer_incumbent(std::atomic<i64>& shared, i64 makespan) {
  i64 cur = shared.load(std::memory_order_relaxed);
  while (makespan < cur &&
         !shared.compare_exchange_weak(cur, makespan,
                                       std::memory_order_relaxed)) {
  }
}

SchedulePartial scan_cube_range(const std::vector<IntVec>& cube,
                                std::size_t begin, std::size_t end,
                                const PointBlock& deps, const SpanKernel& span,
                                bool keep_all_optima, const CancelToken* cancel,
                                std::atomic<i64>& shared_best) {
  SchedulePartial part;
  for (std::size_t i = begin; i < end; ++i) {
    if (part.examined % kCancelPollStride == 0) {
      throw_if_cancelled(cancel, "schedule search");
    }
    ++part.examined;
    // Condition (1): positive slack on every dependence, evaluated as one
    // batched pass over the dependence block.
    if (!deps.all_dots_positive(cube[i])) continue;
    ++part.feasible;

    // The incumbent bound is the better of this worker's best makespan and
    // the cross-worker shared bound; candidates that exceed it can never be
    // global optima (the shared bound never drops below the final global
    // makespan), so pruning with it is exact.
    const i64 bound =
        std::min(part.makespan, shared_best.load(std::memory_order_relaxed));
    const i64 makespan = span.makespan_within(cube[i], bound);
    if (makespan < 0) {
      ++part.pruned;
      continue;
    }
    if (makespan < part.makespan) {
      part.makespan = makespan;
      part.optima.clear();
      part.optima.emplace_back(cube[i]);
      offer_incumbent(shared_best, makespan);
    } else if (makespan == part.makespan && keep_all_optima) {
      part.optima.emplace_back(cube[i]);
    }
  }
  return part;
}

}  // namespace

ScheduleSearchResult find_optimal_schedules(
    const std::vector<IntVec>& deps, const IndexDomain& domain,
    const ScheduleSearchOptions& options) {
  NUSYS_REQUIRE(!deps.empty(), "schedule search: no dependences");
  for (const auto& d : deps) {
    NUSYS_REQUIRE(d.dim() == domain.dim(),
                  "schedule search: dependence dimension mismatch");
  }

  const WallTimer timer;

  // Enumerate the domain once and reduce it to its hull vertices (exact
  // for the linear makespan functional); every candidate is evaluated
  // against the same kernel, shared read-only across workers.
  const std::vector<IntVec> points = domain.points();
  NUSYS_REQUIRE(!points.empty(), "schedule search: empty domain");
  const SpanKernel span(points, options.hull_kernels);
  const PointBlock deps_block(deps);

  const auto cube = coefficient_cube(domain.dim(), options.coeff_bound);
  const std::size_t workers = options.parallelism.workers_for(cube.size());

  // Cross-worker incumbent makespan; see scan_cube_range.
  std::atomic<i64> shared_best{std::numeric_limits<i64>::max()};

  std::vector<SchedulePartial> parts(workers);
  run_chunked(cube.size(), workers,
              [&](std::size_t worker, std::size_t begin, std::size_t end) {
                parts[worker] = scan_cube_range(
                    cube, begin, end, deps_block, span,
                    options.keep_all_optima, options.cancel, shared_best);
              });

  // Merge in worker order. Chunks are contiguous and ascending, so
  // concatenating the winning workers' optima reproduces the sequential
  // cube-order exactly.
  ScheduleSearchResult result;
  result.makespan = std::numeric_limits<i64>::max();
  result.workers_used = workers;
  for (const auto& part : parts) {
    result.examined += part.examined;
    result.feasible_count += part.feasible;
    result.pruned += part.pruned;
    result.makespan = std::min(result.makespan, part.makespan);
  }
  for (const auto& part : parts) {
    if (part.makespan != result.makespan) continue;
    result.optima.insert(result.optima.end(), part.optima.begin(),
                         part.optima.end());
  }
  if (!options.keep_all_optima && result.optima.size() > 1) {
    result.optima.resize(1);
  }
  result.wall_seconds = timer.seconds();
  return result;
}

ScheduleSearchResult find_optimal_schedules(
    const DependenceSet& deps, const IndexDomain& domain,
    const ScheduleSearchOptions& options) {
  return find_optimal_schedules(deps.vectors(), domain, options);
}

}  // namespace nusys
