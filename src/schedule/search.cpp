#include "schedule/search.hpp"

#include <algorithm>
#include <limits>

namespace nusys {

const LinearSchedule& ScheduleSearchResult::best() const {
  if (optima.empty()) {
    throw SearchFailure(
        "no feasible linear schedule within the coefficient bound; widen "
        "the bound or restructure the recurrence (Sec. II-B)");
  }
  return optima.front();
}

std::vector<IntVec> coefficient_cube(std::size_t dim, i64 bound) {
  NUSYS_REQUIRE(dim >= 1, "coefficient_cube: dimension must be positive");
  NUSYS_REQUIRE(bound >= 0, "coefficient_cube: negative bound");
  std::vector<IntVec> out;
  IntVec v(dim);
  auto recurse = [&](auto&& self, std::size_t axis) -> void {
    if (axis == dim) {
      out.push_back(v);
      return;
    }
    for (i64 c = -bound; c <= bound; ++c) {
      v[axis] = c;
      self(self, axis + 1);
    }
    v[axis] = 0;
  };
  recurse(recurse, 0);
  // Canonical order: small coefficients first so ties in makespan resolve
  // to the simplest schedule, matching the paper's hand-derived choices.
  std::sort(out.begin(), out.end(), [](const IntVec& a, const IntVec& b) {
    const i64 na = a.l1_norm();
    const i64 nb = b.l1_norm();
    if (na != nb) return na < nb;
    return a < b;
  });
  return out;
}

ScheduleSearchResult find_optimal_schedules(
    const std::vector<IntVec>& deps, const IndexDomain& domain,
    const ScheduleSearchOptions& options) {
  NUSYS_REQUIRE(!deps.empty(), "schedule search: no dependences");
  for (const auto& d : deps) {
    NUSYS_REQUIRE(d.dim() == domain.dim(),
                  "schedule search: dependence dimension mismatch");
  }

  // Enumerate the domain once; every candidate is evaluated against the
  // same point list.
  const std::vector<IntVec> points = domain.points();
  NUSYS_REQUIRE(!points.empty(), "schedule search: empty domain");

  ScheduleSearchResult result;
  result.makespan = std::numeric_limits<i64>::max();

  for (const auto& coeffs : coefficient_cube(domain.dim(),
                                             options.coeff_bound)) {
    ++result.examined;
    const LinearSchedule candidate(coeffs);
    if (!candidate.is_feasible(deps)) continue;
    ++result.feasible_count;

    i64 lo = std::numeric_limits<i64>::max();
    i64 hi = std::numeric_limits<i64>::min();
    bool pruned = false;
    for (const auto& p : points) {
      const i64 t = candidate.at(p);
      lo = std::min(lo, t);
      hi = std::max(hi, t);
      // Prune candidates that already exceed the incumbent makespan.
      if (checked_sub(hi, lo) > result.makespan) {
        pruned = true;
        break;
      }
    }
    if (pruned) continue;
    const i64 makespan = checked_sub(hi, lo);
    if (makespan < result.makespan) {
      result.makespan = makespan;
      result.optima.clear();
      result.optima.push_back(candidate);
    } else if (makespan == result.makespan && options.keep_all_optima) {
      result.optima.push_back(candidate);
    }
  }
  if (!options.keep_all_optima && result.optima.size() > 1) {
    result.optima.resize(1);
  }
  return result;
}

ScheduleSearchResult find_optimal_schedules(
    const DependenceSet& deps, const IndexDomain& domain,
    const ScheduleSearchOptions& options) {
  return find_optimal_schedules(deps.vectors(), domain, options);
}

}  // namespace nusys
