// Optimal linear-schedule search.
//
// System (1) of the paper — T(d) > 0 for every dependence — "may have no
// solution or several solutions. In this latter case, the one which
// minimizes the total execution time is chosen." The coefficient systems in
// systolic synthesis are tiny (n <= 3, a handful of dependences), so we
// search the integer coefficient cube [-bound, bound]^n exhaustively,
// evaluate the exact makespan of each feasible candidate over the index
// domain, and return every optimum. Exhaustiveness is what lets the library
// *enumerate* the design space the way the paper's methodology promises
// (Sec. I: "the possibility of automatically generating a number of viable
// algorithms ... enables the selection of an optimal algorithm").
//
// The cube is scanned in canonical (L1-then-lex) order; with
// `parallelism.threads > 1` it is split into contiguous chunks scanned by
// worker threads and merged back in worker order, so the reported optima,
// makespan, `examined` and `feasible_count` are identical for every worker
// count (only `pruned` is an execution detail of the chunking).
#pragma once

#include <vector>

#include "ir/dependence.hpp"
#include "ir/domain.hpp"
#include "schedule/timing.hpp"
#include "search/kernels.hpp"
#include "support/cancel.hpp"
#include "support/parallel.hpp"
#include "support/telemetry.hpp"

namespace nusys {

/// Options controlling the exhaustive schedule search.
struct ScheduleSearchOptions {
  /// Coefficients are searched in [-coeff_bound, coeff_bound].
  i64 coeff_bound = 3;
  /// When true, keep every makespan-optimal schedule; otherwise keep the
  /// single canonical optimum (smallest L1 coefficient norm, then
  /// lexicographically smallest coefficient vector).
  bool keep_all_optima = true;
  /// Worker threads scanning the coefficient cube (0 = hardware
  /// concurrency, 1 = the exact legacy sequential path).
  SearchParallelism parallelism;
  /// Cooperative cancellation: polled every kCancelPollStride candidates;
  /// a fired token aborts the scan with CancelledError. nullptr (the
  /// default) is the exact legacy path; a token that never fires changes
  /// no result.
  const CancelToken* cancel = nullptr;
  /// Evaluate candidate makespans over the convex-hull vertices of the
  /// domain instead of every point (exact for linear schedules; see
  /// search/kernels.hpp). Both settings return bit-identical results; off
  /// is the full-point ablation path.
  bool hull_kernels = hull_kernels_default();
};

/// Outcome of a schedule search.
struct ScheduleSearchResult {
  /// All makespan-optimal schedules (canonically ordered), or the single
  /// canonical one when keep_all_optima is false. Empty iff infeasible.
  std::vector<LinearSchedule> optima;
  /// The optimal makespan (valid only when optima is non-empty).
  i64 makespan = 0;
  /// Number of feasible candidates encountered (worker-invariant).
  std::size_t feasible_count = 0;
  /// Number of coefficient vectors examined (worker-invariant).
  std::size_t examined = 0;
  /// Feasible candidates whose makespan evaluation was cut short by the
  /// incumbent bound. Advisory: the incumbent is shared across workers
  /// through a relaxed atomic, so this count depends on chunking *and*
  /// thread timing (optima and makespan never do).
  std::size_t pruned = 0;
  /// Workers the search actually used.
  std::size_t workers_used = 1;
  /// Search wall time.
  double wall_seconds = 0.0;

  [[nodiscard]] bool found() const noexcept { return !optima.empty(); }

  /// The canonical optimum; throws SearchFailure when none was found.
  [[nodiscard]] const LinearSchedule& best() const;

  /// This search as one telemetry stage named `stage`.
  [[nodiscard]] StageTelemetry telemetry(std::string stage) const;
};

/// Searches for makespan-optimal linear schedules satisfying T(d) > 0 for
/// every `d` in `deps`, with the makespan measured over `domain`.
/// The zero schedule is never feasible (deps are nonzero), so an empty
/// result means system (1) has no solution within the bound; per Sec. II-B
/// the caller should retry with a wider bound or a different formulation.
[[nodiscard]] ScheduleSearchResult find_optimal_schedules(
    const std::vector<IntVec>& deps, const IndexDomain& domain,
    const ScheduleSearchOptions& options = {});

[[nodiscard]] ScheduleSearchResult find_optimal_schedules(
    const DependenceSet& deps, const IndexDomain& domain,
    const ScheduleSearchOptions& options = {});

/// Coefficient-vector candidates in canonical order (increasing L1 norm,
/// then lexicographic). Exposed for the space-mapping search, which walks
/// the same cube.
[[nodiscard]] std::vector<IntVec> coefficient_cube(std::size_t dim,
                                                   i64 bound);

}  // namespace nusys
