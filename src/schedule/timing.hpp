// Linear timing functions (Sec. II-B, condition (1)).
//
// A timing function T maps index points to clock ticks. Correctness demands
// T(d) > 0 for every dependence vector d: a value must be produced strictly
// before it is consumed. The quality metric is the *total execution time*,
// which the paper defines as the difference between the maximum and minimum
// of T over the index set.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "ir/dependence.hpp"
#include "ir/domain.hpp"

namespace nusys {

/// Inclusive range of clock ticks a schedule spans on a domain.
struct TimeSpan {
  i64 first = 0;  ///< Minimum of T over the domain.
  i64 last = 0;   ///< Maximum of T over the domain.

  /// The paper's "total execution time": last - first.
  [[nodiscard]] i64 makespan() const { return checked_sub(last, first); }

  friend bool operator==(const TimeSpan& a, const TimeSpan& b) = default;
};

/// A (quasi-)affine timing function T(x) = coeffs · x + offset.
class LinearSchedule {
 public:
  LinearSchedule() = default;

  explicit LinearSchedule(IntVec coeffs, i64 offset = 0)
      : coeffs_(std::move(coeffs)), offset_(offset) {}

  [[nodiscard]] const IntVec& coeffs() const noexcept { return coeffs_; }
  [[nodiscard]] i64 offset() const noexcept { return offset_; }
  [[nodiscard]] std::size_t dim() const noexcept { return coeffs_.dim(); }

  /// The tick at which index point `x` executes.
  [[nodiscard]] i64 at(const IntVec& x) const;

  /// T applied to a dependence vector: the pipeline slack of that
  /// dependence (offsets cancel on differences).
  [[nodiscard]] i64 slack(const IntVec& dependence) const;

  /// True when every dependence has positive slack (condition (1)).
  [[nodiscard]] bool is_feasible(const std::vector<IntVec>& deps) const;
  [[nodiscard]] bool is_feasible(const DependenceSet& deps) const;

  /// Min/max tick over a domain (by enumeration; throws ContractError on an
  /// empty domain).
  [[nodiscard]] TimeSpan span(const IndexDomain& domain) const;

  friend bool operator==(const LinearSchedule& a,
                         const LinearSchedule& b) = default;

  /// "T(i, k) = i + k" using the domain's index names.
  [[nodiscard]] std::string to_string(
      const std::vector<std::string>& names) const;

 private:
  IntVec coeffs_;
  i64 offset_ = 0;
};

std::ostream& operator<<(std::ostream& os, const LinearSchedule& s);

}  // namespace nusys
