#include "service/server.hpp"

#include <csignal>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace nusys {

void serve_connection(SynthesisService& service, LineTransport& transport) {
  while (const auto line = transport.recv_line()) {
    ServiceResponse response;
    try {
      const ServiceRequest request = parse_request(*line);
      response = service.handle(request);
    } catch (const Error& e) {
      response.status = ResponseStatus::kError;
      response.error = e.what();
      // Best effort: echo the id when the line parsed far enough to have
      // one, so the client can still correlate the failure.
      try {
        const JsonValue obj = JsonValue::parse(*line);
        if (obj.is_object()) {
          if (const JsonValue* id = obj.find("id"); id && id->is_string()) {
            response.id = id->as_string();
          }
        }
      } catch (const Error&) {
        // The line was not JSON at all; the empty id stands.
      }
    }
    try {
      transport.send_line(encode_response(response));
    } catch (const TransportError&) {
      return;  // Peer hung up mid-response.
    }
  }
}

TcpServer::TcpServer(const ServerConfig& config)
    : listener_(config.port), service_(config.service) {}

TcpServer::~TcpServer() {
  stop();
  service_.drain();
}

int TcpServer::port() const noexcept { return listener_.port(); }

void TcpServer::run() {
  std::mutex mu;
  std::vector<std::unique_ptr<FdLineTransport>> connections;
  std::vector<std::thread> threads;

  while (auto accepted = listener_.accept()) {
    const std::lock_guard<std::mutex> lock(mu);
    connections.push_back(std::move(accepted));
    FdLineTransport* transport = connections.back().get();
    threads.emplace_back(
        [this, transport] { serve_connection(service_, *transport); });
  }

  // stop() fired: refuse new work but let admitted requests finish...
  service_.drain();
  // ...then hang up every connection so blocked readers see end-of-stream.
  {
    const std::lock_guard<std::mutex> lock(mu);
    for (auto& connection : connections) connection->close();
  }
  for (auto& thread : threads) thread.join();
}

void TcpServer::stop() { listener_.stop(); }

namespace {

/// The stop descriptor the signal handler writes to. One server at a time
/// may run under signals (the CLI's serve command).
std::atomic<int> g_signal_stop_fd{-1};

extern "C" void handle_stop_signal(int) {
  const int fd = g_signal_stop_fd.load();
  if (fd >= 0) {
    const char byte = 's';
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

}  // namespace

int run_server_until_signal(const ServerConfig& config, std::ostream& log) {
  TcpServer server(config);
  g_signal_stop_fd.store(server.stop_fd());

  struct sigaction action {};
  action.sa_handler = handle_stop_signal;
  sigemptyset(&action.sa_mask);
  struct sigaction previous_int {};
  struct sigaction previous_term {};
  sigaction(SIGINT, &action, &previous_int);
  sigaction(SIGTERM, &action, &previous_term);
  // A client that disconnects mid-response must not kill the server.
  signal(SIGPIPE, SIG_IGN);

  log << "nusys service listening on 127.0.0.1:" << server.port() << " ("
      << config.service.workers << " worker(s), queue capacity "
      << config.service.queue_capacity << ")\n"
      << std::flush;
  server.run();
  log << "nusys service drained cleanly\n" << std::flush;

  sigaction(SIGINT, &previous_int, nullptr);
  sigaction(SIGTERM, &previous_term, nullptr);
  g_signal_stop_fd.store(-1);
  return 0;
}

}  // namespace nusys
