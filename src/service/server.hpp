// The serve side of the synthesis service: a per-connection request loop
// over any LineTransport, and a TCP front end with graceful signal-driven
// drain.
//
// Lifecycle of `nusys serve`:
//   1. TcpServer binds (port 0 = ephemeral; the actual port is printed),
//      starts the SynthesisService (worker pool + shared design cache).
//   2. run() accepts connections; each gets a thread running
//      serve_connection() until the peer hangs up.
//   3. SIGINT/SIGTERM (or stop()) ends the accept loop; the service
//      drains — admitted requests finish, new ones are rejected — all
//      connection sockets are shut down, connection threads join, and
//      run() returns. The CLI then exits 0.
#pragma once

#include <ostream>

#include "service/session.hpp"
#include "service/socket.hpp"

namespace nusys {

/// Serves one connection: reads request lines until end-of-stream,
/// answering each. A malformed line earns an error response (with the
/// request id when it could be recovered) and the loop continues — one
/// bad request never tears down the connection.
void serve_connection(SynthesisService& service, LineTransport& transport);

/// Configuration of the TCP front end.
struct ServerConfig {
  int port = 0;  ///< 0 = ephemeral; read the actual one from port().
  ServiceConfig service;
};

/// A TCP synthesis server; owns the listener, the service and the
/// connection threads.
class TcpServer {
 public:
  explicit TcpServer(const ServerConfig& config);

  /// Stops and joins everything (idempotent with run()'s own shutdown).
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  [[nodiscard]] int port() const noexcept;
  [[nodiscard]] SynthesisService& service() noexcept { return service_; }

  /// Accepts and serves connections until stop(); drains the service and
  /// joins every connection thread before returning.
  void run();

  /// Ends run() from another thread. For signal handlers, write a byte to
  /// stop_fd() instead (the async-signal-safe spelling of the same thing).
  void stop();

  [[nodiscard]] int stop_fd() const noexcept { return listener_.stop_fd(); }

 private:
  TcpListener listener_;
  SynthesisService service_;
};

/// Runs a TCP server until SIGINT/SIGTERM, announcing the port on `log`.
/// Returns the process exit code (0 on a clean drain). Restores the
/// previous signal dispositions before returning.
[[nodiscard]] int run_server_until_signal(const ServerConfig& config,
                                          std::ostream& log);

}  // namespace nusys
