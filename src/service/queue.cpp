#include "service/queue.hpp"

#include <algorithm>
#include <utility>

namespace nusys {

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {
  NUSYS_REQUIRE(capacity > 0, "a request queue needs a positive capacity");
}

bool RequestQueue::try_push(std::shared_ptr<PendingJob> job) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || jobs_.size() >= capacity_) return false;
    jobs_.push_back(std::move(job));
    high_water_ = std::max(high_water_, jobs_.size());
  }
  cv_.notify_one();
  return true;
}

std::shared_ptr<PendingJob> RequestQueue::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return !jobs_.empty() || closed_; });
  if (jobs_.empty()) return nullptr;
  auto job = std::move(jobs_.front());
  jobs_.pop_front();
  return job;
}

void RequestQueue::close() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t RequestQueue::depth() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return jobs_.size();
}

std::size_t RequestQueue::high_water() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return high_water_;
}

}  // namespace nusys
