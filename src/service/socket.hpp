// POSIX TCP plumbing of the synthesis service: a line-framed transport
// over a connected socket, a client-side connector, and a stoppable
// listener.
//
// Only this file (and its .cpp) touches socket headers; the rest of the
// service layer speaks LineTransport. The listener's stop() is
// async-signal-friendly: it writes one byte to a self-pipe that the
// accept loop polls alongside the listening socket, so a signal handler
// can end a blocked accept without races or EINTR loops.
#pragma once

#include <memory>
#include <string>

#include "service/protocol.hpp"

namespace nusys {

/// LineTransport over a connected stream-socket file descriptor (owned).
class FdLineTransport final : public LineTransport {
 public:
  /// Takes ownership of `fd` (must be a connected stream socket).
  explicit FdLineTransport(int fd);
  ~FdLineTransport() override;

  void send_line(const std::string& line) override;
  [[nodiscard]] std::optional<std::string> recv_line() override;

  /// Shuts down both directions and closes the descriptor; a peer (or
  /// another thread) blocked in recv_line observes end-of-stream.
  void close() override;

 private:
  int fd_;
  std::string buffer_;  ///< Bytes received past the last returned line.
};

/// Connects to host:port; throws TransportError when unreachable.
[[nodiscard]] std::unique_ptr<FdLineTransport> connect_tcp(
    const std::string& host, int port);

/// A listening TCP socket with a self-pipe stop switch.
class TcpListener {
 public:
  /// Binds and listens on 127.0.0.1:`port`; 0 picks an ephemeral port.
  /// Throws TransportError when the port is unavailable.
  explicit TcpListener(int port);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// The bound port (the actual one when constructed with 0).
  [[nodiscard]] int port() const noexcept { return port_; }

  /// Blocks for the next connection; nullptr once stop() was called.
  [[nodiscard]] std::unique_ptr<FdLineTransport> accept();

  /// Ends the accept loop. Safe from other threads; the write side is
  /// async-signal-safe (see stop_fd()).
  void stop();

  /// The self-pipe write descriptor: a signal handler may write one byte
  /// to it to stop the listener (the only async-signal-safe entry point).
  [[nodiscard]] int stop_fd() const noexcept { return wake_tx_; }

 private:
  int listen_fd_ = -1;
  int wake_rx_ = -1;  ///< Self-pipe read end, polled next to listen_fd_.
  int wake_tx_ = -1;  ///< Self-pipe write end.
  int port_ = 0;
};

}  // namespace nusys
