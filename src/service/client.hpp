// Client side of the synthesis service: one connection, synchronous
// request/response calls.
//
// Works over any LineTransport — the CLI's `nusys request` wraps a TCP
// connection, the tests and the throughput bench a loopback endpoint.
#pragma once

#include <memory>
#include <string>

#include "service/protocol.hpp"

namespace nusys {

/// A connected service client. Calls are synchronous and must not be
/// issued concurrently on one client (open one client per thread).
class ServiceClient {
 public:
  /// Takes ownership of a connected transport endpoint.
  explicit ServiceClient(std::unique_ptr<LineTransport> transport);

  /// Sends `request` and blocks for its response. Assigns a fresh id when
  /// the request carries none. Throws TransportError when the server hung
  /// up, DomainError/JsonError on an undecodable response.
  [[nodiscard]] ServiceResponse call(ServiceRequest request);

  /// Convenience probes.
  [[nodiscard]] bool ping();
  [[nodiscard]] ServiceResponse stats();

  void close();

 private:
  std::unique_ptr<LineTransport> transport_;
  std::size_t next_id_ = 0;
};

/// Connects a client to a TCP service at host:port.
[[nodiscard]] ServiceClient connect_service(const std::string& host,
                                            int port);

}  // namespace nusys
