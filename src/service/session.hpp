// The synthesis service proper: one long-lived worker pool, one shared
// canonical design cache, a bounded admission queue, per-request deadlines
// with cooperative cancellation, and an observability snapshot.
//
// Transport-agnostic by design: handle() takes a decoded request and
// returns the response, blocking the calling (connection) thread until a
// worker finishes the job. The TCP server, the loopback tests and the
// throughput bench all sit on this one entry point.
//
// Determinism: per-problem searches run the exact sequential path
// (threads = 1) inside a worker — concurrency lives ACROSS requests, so a
// response's DesignReports are bit-identical to one-at-a-time `nusys`
// synthesis at every worker count. Concurrent requests that share a cache
// key cost one search via the cache's single-flight gate; everyone replays
// the same entry.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "service/protocol.hpp"
#include "service/queue.hpp"
#include "support/cache.hpp"
#include "support/json.hpp"
#include "support/parallel.hpp"
#include "support/telemetry.hpp"
#include "synth/pipeline.hpp"
#include "synth/synthesizer.hpp"
#include "systolic/plan_cache.hpp"

namespace nusys {

/// Configuration of one service instance.
struct ServiceConfig {
  std::size_t workers = 2;         ///< Worker threads consuming the queue.
  std::size_t queue_capacity = 16; ///< Admitted-but-unstarted request bound.
  i64 retry_after_ms = 25;         ///< Advice attached to rejections.
  i64 default_timeout_ms = 0;      ///< Deadline when a request names none;
                                   ///< 0 = no deadline.
  CacheConfig cache;               ///< Shared canonical design cache.
  SynthesisOptions synthesis;      ///< Conv search options (threads and
                                   ///< cache fields are overridden).
  NonUniformSynthesisOptions pipeline;  ///< Pipeline search options (ditto).
};

/// Upper bucket bounds (milliseconds) of the request latency histogram;
/// the last bucket is unbounded.
[[nodiscard]] const std::vector<i64>& latency_bucket_bounds_ms();

/// Observability snapshot of a running service.
struct ServiceStats {
  std::size_t requests_total = 0;  ///< Every handled request, any status.
  std::size_t requests_ok = 0;
  std::size_t requests_rejected = 0;
  std::size_t requests_timeout = 0;
  std::size_t requests_error = 0;
  std::size_t problems_completed = 0;  ///< Problems answered inside ok runs.
  std::size_t candidates_examined = 0; ///< Aggregated search telemetry.
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  std::size_t queue_high_water = 0;
  std::size_t active_requests = 0;  ///< Jobs a worker is executing right now.
  std::size_t workers = 0;
  double uptime_seconds = 0.0;
  double busy_seconds = 0.0;  ///< Summed worker time spent on jobs.
  CacheStats cache;
  /// The process-global compiled-plan cache (wavefront_plan_cache()), so
  /// `stats` responses expose plan reuse next to design reuse. Counters
  /// are process-wide, not per-service-instance.
  PlanCacheStats plan_cache;
  /// Per-request latency counts, parallel to latency_bucket_bounds_ms()
  /// plus one overflow bucket.
  std::vector<std::size_t> latency_histogram;

  /// cache.hits / (hits + misses); 0 before any lookup.
  [[nodiscard]] double cache_hit_rate() const noexcept;

  /// busy_seconds / (uptime_seconds * workers), clamped to [0, 1].
  [[nodiscard]] double worker_utilization() const noexcept;

  /// The stats payload of an ok stats response.
  [[nodiscard]] JsonValue to_json() const;
};

/// A persistent synthesis service instance.
class SynthesisService {
 public:
  explicit SynthesisService(ServiceConfig config);

  /// Drains (finishes queued and in-flight jobs) and joins the workers.
  ~SynthesisService();

  SynthesisService(const SynthesisService&) = delete;
  SynthesisService& operator=(const SynthesisService&) = delete;

  /// Handles one request, blocking until its response is ready. Safe to
  /// call from any number of connection threads. Never throws for
  /// request-level failures — they come back as rejected/timeout/error
  /// responses.
  [[nodiscard]] ServiceResponse handle(const ServiceRequest& request);

  /// Stops admissions, lets admitted jobs finish, joins the workers.
  /// Idempotent; handle() answers `rejected` afterwards.
  void drain();

  [[nodiscard]] ServiceStats stats() const;

  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }

 private:
  void worker_loop();
  [[nodiscard]] ServiceResponse execute(PendingJob& job);
  [[nodiscard]] ServiceResponse run_problems(PendingJob& job);
  void record(const ServiceResponse& response, double seconds);

  ServiceConfig config_;
  WallTimer uptime_;
  DesignCache cache_;
  RequestQueue queue_;
  std::mutex drain_mu_;               ///< Serializes drain() callers.
  std::unique_ptr<ThreadPool> pool_;  ///< The long-lived worker pool.
  std::atomic<std::size_t> active_jobs_{0};
  std::atomic<long long> busy_ns_{0};
  std::atomic<bool> draining_{false};

  mutable std::mutex stats_mu_;
  ServiceStats counters_;  ///< Request/latency/telemetry counters only.
};

}  // namespace nusys
