// Wire protocol of the synthesis service: newline-delimited JSON requests
// and responses over a pluggable line transport.
//
// One request or response is exactly one JSON object on one line (NDJSON).
// The shapes:
//
//   request  {"id": "r1", "kind": "synth", "problems": [{...}],
//             "timeout_ms": 500}
//   response {"id": "r1", "status": "ok", "results": [{"name": ...,
//             "cache_hit": true, "report": {...}}]}
//
// `kind` is ping | synth | batch | stats | sleep. A synth request carries
// exactly one problem, a batch request one or more; both use the batch-JSONL
// problem fields (src/synth/batch.hpp). `status` is ok | rejected |
// timeout | error; a rejected response names `retry_after_ms` so a client
// under backpressure knows when to come back. Result reports carry the full
// DesignReport structure, so a decoded response reproduces the report
// byte-for-byte — the service differential test leans on that.
//
// The transport is abstract: the TCP server and client frame lines over a
// socket (src/service/socket.hpp), while tests and the throughput bench
// drive the whole stack over an in-process loopback pair with no sockets
// involved.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "support/errors.hpp"
#include "support/json.hpp"
#include "synth/batch.hpp"
#include "synth/report.hpp"

namespace nusys {

/// A transport endpoint died mid-conversation (peer hung up, pipe broke).
class TransportError : public Error {
 public:
  explicit TransportError(const std::string& what) : Error(what) {}
};

/// One endpoint of a bidirectional, line-framed byte stream.
class LineTransport {
 public:
  virtual ~LineTransport() = default;

  /// Sends one line; the newline is appended by the transport. `line` must
  /// not contain '\n'. Throws TransportError when the peer is gone.
  virtual void send_line(const std::string& line) = 0;

  /// Blocks for the next line (newline stripped); nullopt when the peer
  /// closed the stream.
  [[nodiscard]] virtual std::optional<std::string> recv_line() = 0;

  /// Closes this endpoint: the peer's pending and future recv_line calls
  /// return nullopt. Idempotent.
  virtual void close() = 0;
};

/// A connected in-process transport pair: lines sent on `client` arrive at
/// `server` and vice versa. Unit-tests the protocol stack without sockets.
struct LoopbackPair {
  std::unique_ptr<LineTransport> client;
  std::unique_ptr<LineTransport> server;
};

[[nodiscard]] LoopbackPair make_loopback();

/// What a request asks the service to do.
enum class RequestKind {
  kPing,   ///< Liveness probe; answered inline, never queued.
  kSynth,  ///< Synthesize one problem.
  kBatch,  ///< Synthesize several problems in order through one worker.
  kStats,  ///< Service observability snapshot; answered inline.
  kSleep,  ///< Hold a worker for sleep_ms; deterministic backpressure tests.
};

/// One decoded service request.
struct ServiceRequest {
  std::string id;  ///< Client-chosen correlation id, echoed in the response.
  RequestKind kind = RequestKind::kPing;
  std::vector<BatchProblem> problems;  ///< synth: exactly one; batch: 1+.
  i64 timeout_ms = 0;  ///< Per-request deadline; 0 = server default.
  i64 sleep_ms = 0;    ///< kSleep only.
  /// synth/batch: additionally execute each feasible problem's best design
  /// on the process-default engine against the family's sequential
  /// reference (frontends/execute.hpp).
  bool execute = false;
  /// Execution tile shape ("tile": "PxQ", plus optional "tile_mode" and
  /// "tile_depth"); disabled (0x0) runs flat. Execution-only — never part
  /// of the design cache key.
  TileOptions tile;
};

enum class ResponseStatus {
  kOk,
  kRejected,  ///< Queue full or service draining; retry_after_ms is advice.
  kTimeout,   ///< Deadline expired (queued or mid-search, both cancel).
  kError,     ///< Malformed request or a synthesis-domain failure.
};

/// Outcome of one problem of an ok synth/batch response.
struct ServiceResult {
  std::string name;
  bool cache_hit = false;  ///< Replayed from the shared design cache.
  DesignReport report;     ///< Bit-identical to one-at-a-time synthesis.
  bool executed = false;   ///< Request asked to execute and a design ran.
  bool execution_match = false;  ///< Result matched the reference.
  std::string engine;            ///< Engine that executed ("" when not run).

  friend bool operator==(const ServiceResult& a,
                         const ServiceResult& b) = default;
};

/// One decoded service response.
struct ServiceResponse {
  std::string id;
  ResponseStatus status = ResponseStatus::kOk;
  std::string error;       ///< Human-readable detail when not ok.
  i64 retry_after_ms = 0;  ///< kRejected only.
  std::vector<ServiceResult> results;  ///< ok synth/batch only.
  JsonValue stats;                     ///< ok stats only; null otherwise.
};

[[nodiscard]] const char* request_kind_name(RequestKind kind);
[[nodiscard]] const char* response_status_name(ResponseStatus status);

/// Encodes a request/response as its one-line JSON form (no newline).
[[nodiscard]] std::string encode_request(const ServiceRequest& request);
[[nodiscard]] std::string encode_response(const ServiceResponse& response);

/// Decodes one line. Throws JsonError on malformed JSON and DomainError on
/// a structurally invalid message (unknown kind, missing fields, bad
/// problem spec) — never returns a partial message.
[[nodiscard]] ServiceRequest parse_request(const std::string& line);
[[nodiscard]] ServiceResponse parse_response(const std::string& line);

}  // namespace nusys
