#include "service/session.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "analysis/analyzer.hpp"
#include "conv/recurrences.hpp"
#include "frontends/execute.hpp"
#include "ir/canonical.hpp"
#include "support/hash.hpp"
#include "synth/batch.hpp"
#include "synth/design_cache.hpp"
#include "synth/report.hpp"
#include "systolic/engine_select.hpp"

namespace nusys {

namespace {

bool is_cache_hit(const SearchTelemetry& telemetry) {
  for (const auto& stage : telemetry.stages) {
    if (stage.stage == "design-cache" && stage.cache_hits > 0) return true;
  }
  return false;
}

JsonValue latency_json(const std::vector<std::size_t>& histogram) {
  const auto& bounds = latency_bucket_bounds_ms();
  JsonValue buckets = JsonValue::Array{};
  for (std::size_t i = 0; i < histogram.size(); ++i) {
    JsonValue bucket;
    bucket.set("le_ms", i < bounds.size() ? JsonValue(bounds[i])
                                          : JsonValue("inf"));
    bucket.set("count", histogram[i]);
    buckets.push_back(std::move(bucket));
  }
  return buckets;
}

}  // namespace

const std::vector<i64>& latency_bucket_bounds_ms() {
  static const std::vector<i64> bounds{1, 5, 10, 50, 100, 500, 1000, 5000};
  return bounds;
}

double ServiceStats::cache_hit_rate() const noexcept {
  const std::size_t lookups = cache.hits + cache.misses;
  if (lookups == 0) return 0.0;
  return static_cast<double>(cache.hits) / static_cast<double>(lookups);
}

double ServiceStats::worker_utilization() const noexcept {
  if (workers == 0 || uptime_seconds <= 0.0) return 0.0;
  const double utilization =
      busy_seconds / (uptime_seconds * static_cast<double>(workers));
  return utilization < 0.0 ? 0.0 : utilization > 1.0 ? 1.0 : utilization;
}

JsonValue ServiceStats::to_json() const {
  JsonValue obj;

  JsonValue requests;
  requests.set("total", requests_total);
  requests.set("ok", requests_ok);
  requests.set("rejected", requests_rejected);
  requests.set("timeout", requests_timeout);
  requests.set("error", requests_error);
  obj.set("requests", std::move(requests));

  JsonValue queue;
  queue.set("depth", queue_depth);
  queue.set("capacity", queue_capacity);
  queue.set("high_water", queue_high_water);
  obj.set("queue", std::move(queue));

  JsonValue workers_obj;
  workers_obj.set("count", workers);
  workers_obj.set("active_requests", active_requests);
  workers_obj.set("uptime_seconds", uptime_seconds);
  workers_obj.set("busy_seconds", busy_seconds);
  workers_obj.set("utilization", worker_utilization());
  obj.set("workers", std::move(workers_obj));

  JsonValue cache_obj;
  cache_obj.set("hits", cache.hits);
  cache_obj.set("misses", cache.misses);
  cache_obj.set("insertions", cache.insertions);
  cache_obj.set("evictions", cache.evictions);
  cache_obj.set("validation_failures", cache.validation_failures);
  cache_obj.set("hit_rate", cache_hit_rate());
  obj.set("cache", std::move(cache_obj));

  // Compiled-plan reuse, mirroring the design-cache block above. Warm
  // `execute` requests hit here and skip plan construction entirely.
  JsonValue plan_obj;
  plan_obj.set("hits", plan_cache.hits);
  plan_obj.set("misses", plan_cache.misses);
  plan_obj.set("insertions", plan_cache.insertions);
  plan_obj.set("evictions", plan_cache.evictions);
  plan_obj.set("invalidations", plan_cache.invalidations);
  plan_obj.set("audit_passes", plan_cache.audit_passes);
  plan_obj.set("audit_failures", plan_cache.audit_failures);
  plan_obj.set("entries", plan_cache.entries);
  plan_obj.set("bytes", plan_cache.bytes);
  plan_obj.set("capacity_bytes", plan_cache.capacity_bytes);
  plan_obj.set("hit_rate", plan_cache.hit_rate());
  obj.set("plan_cache", std::move(plan_obj));

  JsonValue search;
  search.set("problems_completed", problems_completed);
  search.set("candidates_examined", candidates_examined);
  obj.set("search", std::move(search));

  // Process-wide static-analyzer activity (certificate-based design
  // revalidation replaced the enumerative oracles on the cache hot path).
  obj.set("analysis", analysis_counters_json());

  obj.set("latency_ms", latency_json(latency_histogram));
  return obj;
}

SynthesisService::SynthesisService(ServiceConfig config)
    : config_(std::move(config)),
      cache_(config_.cache),
      queue_(config_.queue_capacity) {
  NUSYS_REQUIRE(config_.workers > 0, "the service needs at least one worker");
  counters_.latency_histogram.assign(latency_bucket_bounds_ms().size() + 1,
                                     0);
  pool_ = std::make_unique<ThreadPool>(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    pool_->submit([this] { worker_loop(); });
  }
}

SynthesisService::~SynthesisService() { drain(); }

void SynthesisService::drain() {
  draining_.store(true, std::memory_order_relaxed);
  queue_.close();
  std::unique_ptr<ThreadPool> pool;
  {
    const std::lock_guard<std::mutex> lock(drain_mu_);
    pool = std::move(pool_);
  }
  pool.reset();  // Joins the workers once the admitted jobs drained.
}

ServiceResponse SynthesisService::handle(const ServiceRequest& request) {
  const WallTimer timer;
  ServiceResponse response;
  response.id = request.id;
  switch (request.kind) {
    case RequestKind::kPing:
      break;  // Answered inline; status defaults to ok.
    case RequestKind::kStats:
      response.stats = stats().to_json();
      break;
    case RequestKind::kSynth:
    case RequestKind::kBatch:
    case RequestKind::kSleep: {
      auto job = std::make_shared<PendingJob>();
      job->request = request;
      const i64 timeout_ms = request.timeout_ms > 0
                                 ? request.timeout_ms
                                 : config_.default_timeout_ms;
      if (timeout_ms > 0) {
        // Armed at admission: time spent queued consumes the deadline.
        job->cancel.set_deadline_after(std::chrono::milliseconds(timeout_ms));
      }
      auto future = job->done.get_future();
      const bool draining = draining_.load(std::memory_order_relaxed);
      if (draining || !queue_.try_push(job)) {
        response.status = ResponseStatus::kRejected;
        response.error =
            draining ? "service draining"
                     : "queue full (capacity " +
                           std::to_string(queue_.capacity()) + ")";
        response.retry_after_ms = config_.retry_after_ms;
      } else {
        response = future.get();
      }
      break;
    }
  }
  record(response, timer.seconds());
  return response;
}

void SynthesisService::worker_loop() {
  while (auto job = queue_.pop()) {
    active_jobs_.fetch_add(1, std::memory_order_relaxed);
    const WallTimer busy;
    ServiceResponse response = execute(*job);
    busy_ns_.fetch_add(static_cast<long long>(busy.seconds() * 1e9),
                       std::memory_order_relaxed);
    active_jobs_.fetch_sub(1, std::memory_order_relaxed);
    job->done.set_value(std::move(response));
  }
}

ServiceResponse SynthesisService::execute(PendingJob& job) {
  ServiceResponse response;
  response.id = job.request.id;
  try {
    // A request that burned its whole deadline in the queue never starts:
    // the worker stays available for live requests.
    throw_if_cancelled(&job.cancel, "service admission");
    if (job.request.kind == RequestKind::kSleep) {
      for (i64 slept = 0; slept < job.request.sleep_ms; ++slept) {
        throw_if_cancelled(&job.cancel, "service sleep");
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    } else {
      response = run_problems(job);
    }
  } catch (const CancelledError& e) {
    response.results.clear();
    response.status = ResponseStatus::kTimeout;
    response.error = e.what();
  } catch (const Error& e) {
    response.results.clear();
    response.status = ResponseStatus::kError;
    response.error = e.what();
  }
  return response;
}

ServiceResponse SynthesisService::run_problems(PendingJob& job) {
  ServiceResponse response;
  response.id = job.request.id;

  // The exact sequential search path per problem (threads = 1), like the
  // batch driver: worker count can never change a report, and the search
  // never re-enters the worker pool.
  SynthesisOptions synth = config_.synthesis;
  synth.parallelism.threads = 1;
  synth.cache = &cache_;
  synth.cancel = &job.cancel;
  NonUniformSynthesisOptions pipe = config_.pipeline;
  pipe.parallelism.threads = 1;
  pipe.cache = &cache_;
  pipe.cancel = &job.cancel;

  std::size_t examined = 0;
  for (const auto& problem : job.request.problems) {
    const auto net = batch_interconnect(problem);
    ServiceResult result;
    result.name = problem.name;
    // The same per-problem instance seed as the batch driver's default, so
    // service and batch executions are comparable run for run.
    const std::uint64_t seed = 1 ^ fnv1a64(problem.name);
    if (batch_uses_pipeline(problem)) {
      const auto spec = batch_spec(problem);
      const auto synthesis = synthesize_nonuniform(spec, net, pipe);
      result.report = make_pipeline_report(spec, synthesis);
      result.cache_hit = is_cache_hit(synthesis.telemetry);
      examined += synthesis.telemetry.total_examined();
      if (job.request.execute && synthesis.found()) {
        // Plans built for this design die with its cache entry.
        const PlanOwnerScope owner(pipeline_cache_key(spec, net, pipe));
        const auto execution =
            execute_pipeline_design(problem, synthesis.best(), seed,
                                    job.request.tile, engine_kind(),
                                    &job.cancel);
        result.executed = true;
        result.execution_match = execution.match;
        result.engine = engine_kind_name(execution.engine);
      }
    } else {
      const auto rec = batch_recurrence(problem);
      const auto synthesis = synthesize(rec, net, synth);
      result.report = make_design_report(rec, synthesis);
      result.cache_hit = is_cache_hit(synthesis.telemetry);
      examined += synthesis.telemetry.total_examined();
      if (job.request.execute && synthesis.found()) {
        const PlanOwnerScope owner(
            synthesis_cache_key(canonicalize_recurrence(rec), net, synth));
        const auto execution = execute_uniform_design(
            problem, synthesis.designs.front(), seed, job.request.tile,
            engine_kind(), &job.cancel);
        result.executed = true;
        result.execution_match = execution.match;
        result.engine = engine_kind_name(execution.engine);
      }
    }
    response.results.push_back(std::move(result));
  }
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    counters_.problems_completed += response.results.size();
    counters_.candidates_examined += examined;
  }
  return response;
}

void SynthesisService::record(const ServiceResponse& response,
                              double seconds) {
  const std::lock_guard<std::mutex> lock(stats_mu_);
  ++counters_.requests_total;
  switch (response.status) {
    case ResponseStatus::kOk: ++counters_.requests_ok; break;
    case ResponseStatus::kRejected: ++counters_.requests_rejected; break;
    case ResponseStatus::kTimeout: ++counters_.requests_timeout; break;
    case ResponseStatus::kError: ++counters_.requests_error; break;
  }
  const i64 ms = static_cast<i64>(seconds * 1000.0);
  const auto& bounds = latency_bucket_bounds_ms();
  std::size_t bucket = 0;
  while (bucket < bounds.size() && ms >= bounds[bucket]) ++bucket;
  ++counters_.latency_histogram[bucket];
}

ServiceStats SynthesisService::stats() const {
  ServiceStats snapshot;
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    snapshot = counters_;
  }
  snapshot.queue_depth = queue_.depth();
  snapshot.queue_capacity = queue_.capacity();
  snapshot.queue_high_water = queue_.high_water();
  snapshot.active_requests = active_jobs_.load(std::memory_order_relaxed);
  snapshot.workers = config_.workers;
  snapshot.uptime_seconds = uptime_.seconds();
  snapshot.busy_seconds =
      static_cast<double>(busy_ns_.load(std::memory_order_relaxed)) / 1e9;
  snapshot.cache = cache_.stats();
  snapshot.plan_cache = wavefront_plan_cache().stats();
  return snapshot;
}

}  // namespace nusys
