#include "service/client.hpp"

#include <utility>

#include "service/socket.hpp"

namespace nusys {

ServiceClient::ServiceClient(std::unique_ptr<LineTransport> transport)
    : transport_(std::move(transport)) {
  NUSYS_REQUIRE(transport_ != nullptr, "ServiceClient needs a transport");
}

ServiceResponse ServiceClient::call(ServiceRequest request) {
  if (request.id.empty()) {
    // Built in a local first: assigning a literal into the (non-empty
    // capacity) member trips GCC 12's -Wrestrict false positive (PR105651).
    std::string id("c");
    id += std::to_string(next_id_++);
    request.id = std::move(id);
  }
  transport_->send_line(encode_request(request));
  const auto line = transport_->recv_line();
  if (!line) {
    throw TransportError("the service hung up before responding to '" +
                         request.id + "'");
  }
  ServiceResponse response = parse_response(*line);
  if (response.id != request.id && !response.id.empty()) {
    throw DomainError("response id '" + response.id +
                      "' does not match request id '" + request.id + "'");
  }
  return response;
}

bool ServiceClient::ping() {
  ServiceRequest request;
  request.kind = RequestKind::kPing;
  return call(std::move(request)).status == ResponseStatus::kOk;
}

ServiceResponse ServiceClient::stats() {
  ServiceRequest request;
  request.kind = RequestKind::kStats;
  return call(std::move(request));
}

void ServiceClient::close() {
  if (transport_ != nullptr) transport_->close();
}

ServiceClient connect_service(const std::string& host, int port) {
  return ServiceClient(connect_tcp(host, port));
}

}  // namespace nusys
