// Bounded request queue of the synthesis service.
//
// Admission control lives at the push side: try_push never blocks, so a
// full queue surfaces as an immediate structured rejection (with
// retry-after advice) instead of an unbounded client stall. Workers block
// on pop; close() lets already-admitted jobs drain, then wakes every
// worker with the end-of-stream sentinel. The high-water mark feeds the
// stats endpoint.
#pragma once

#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>

#include "service/protocol.hpp"
#include "support/cancel.hpp"

namespace nusys {

/// One admitted request waiting for (or being run by) a worker. The cancel
/// token is armed with the request deadline at admission, so time spent
/// queued counts against the deadline.
struct PendingJob {
  ServiceRequest request;
  CancelToken cancel;
  std::promise<ServiceResponse> done;
};

/// A bounded, closeable MPMC queue of pending jobs.
class RequestQueue {
 public:
  /// `capacity` must be positive.
  explicit RequestQueue(std::size_t capacity);

  /// Admits a job without blocking. False when the queue is full or
  /// closed — the caller turns that into a rejected response.
  [[nodiscard]] bool try_push(std::shared_ptr<PendingJob> job);

  /// Blocks for the next job; nullptr once the queue is closed AND
  /// drained (the worker's signal to exit).
  [[nodiscard]] std::shared_ptr<PendingJob> pop();

  /// Stops admissions; queued jobs still drain through pop(). Idempotent.
  void close();

  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Largest depth ever observed.
  [[nodiscard]] std::size_t high_water() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<PendingJob>> jobs_;
  std::size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace nusys
