#include "service/protocol.hpp"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <utility>

namespace nusys {

namespace {

/// One direction of a loopback pair: a bounded-by-nothing line mailbox.
struct LoopbackChannel {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::string> lines;
  bool closed = false;

  void push(const std::string& line) {
    {
      const std::lock_guard<std::mutex> lock(mu);
      if (closed) throw TransportError("loopback peer closed");
      lines.push_back(line);
    }
    cv.notify_one();
  }

  std::optional<std::string> pop() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return !lines.empty() || closed; });
    if (lines.empty()) return std::nullopt;
    std::string line = std::move(lines.front());
    lines.pop_front();
    return line;
  }

  void close() {
    {
      const std::lock_guard<std::mutex> lock(mu);
      closed = true;
    }
    cv.notify_all();
  }
};

class LoopbackEndpoint final : public LineTransport {
 public:
  LoopbackEndpoint(std::shared_ptr<LoopbackChannel> out,
                   std::shared_ptr<LoopbackChannel> in)
      : out_(std::move(out)), in_(std::move(in)) {}

  ~LoopbackEndpoint() override { close(); }

  void send_line(const std::string& line) override {
    NUSYS_REQUIRE(line.find('\n') == std::string::npos,
                  "a protocol line must not contain a newline");
    out_->push(line);
  }

  std::optional<std::string> recv_line() override { return in_->pop(); }

  void close() override {
    out_->close();
    in_->close();
  }

 private:
  std::shared_ptr<LoopbackChannel> out_;
  std::shared_ptr<LoopbackChannel> in_;
};

JsonValue encode_problem(const BatchProblem& problem) {
  const char* kind = "conv";
  switch (problem.kind) {
    case BatchProblem::Kind::kConvolution: kind = "conv"; break;
    case BatchProblem::Kind::kPipeline: kind = "pipeline"; break;
    case BatchProblem::Kind::kMatMul: kind = "mm"; break;
    case BatchProblem::Kind::kLU: kind = "lu"; break;
    case BatchProblem::Kind::kFloydWarshall: kind = "fw"; break;
    case BatchProblem::Kind::kSmithWaterman: kind = "sw"; break;
  }
  JsonValue obj;
  obj.set("kind", kind);
  if (!problem.name.empty()) obj.set("name", problem.name);
  obj.set("n", problem.n);
  if (problem.kind == BatchProblem::Kind::kConvolution) {
    obj.set("s", problem.s);
    obj.set("recurrence", problem.forward ? "forward" : "backward");
  }
  if (problem.m > 0) obj.set("m", problem.m);
  if (problem.p > 0) obj.set("p", problem.p);
  if (problem.kind == BatchProblem::Kind::kSmithWaterman) {
    obj.set("band", problem.band);
  }
  obj.set("net", problem.net);
  return obj;
}

BatchProblem decode_problem(const JsonValue& value, std::size_t index) {
  if (!value.is_object()) {
    throw DomainError("request problem " + std::to_string(index) +
                      " must be an object, got " +
                      json_kind_name(value.kind()));
  }
  // The batch-JSONL dialect: flat string/int/bool fields. Reuse its parser
  // so the service and the batch driver accept the exact same problems.
  std::map<std::string, std::string> fields;
  for (const auto& [key, member] : value.as_object()) {
    std::string spelled;
    switch (member.kind()) {
      case JsonValue::Kind::kString:
        spelled = member.as_string();
        break;
      case JsonValue::Kind::kInt:
        spelled = std::to_string(member.as_int());
        break;
      case JsonValue::Kind::kBool:
        spelled = member.as_bool() ? "true" : "false";
        break;
      default:
        throw DomainError("request problem " + std::to_string(index) +
                          " field '" + key + "' must be a scalar, got " +
                          json_kind_name(member.kind()));
    }
    fields.emplace(key, std::move(spelled));
  }
  return parse_batch_problem(fields, index + 1);
}

JsonValue encode_report(const DesignReport& report) {
  JsonValue obj;
  obj.set("problem", report.problem);
  obj.set("feasible", report.feasible);
  obj.set("makespan", report.makespan);
  JsonValue designs;
  for (const auto& block : report.designs) designs.push_back(block);
  if (designs.is_null()) designs = JsonValue::Array{};
  obj.set("designs", std::move(designs));
  return obj;
}

DesignReport decode_report(const JsonValue& value) {
  DesignReport report;
  report.problem = value.at("problem").as_string();
  report.feasible = value.at("feasible").as_bool();
  report.makespan = value.at("makespan").as_int();
  for (const auto& block : value.at("designs").as_array()) {
    report.designs.push_back(block.as_string());
  }
  return report;
}

i64 optional_ms(const JsonValue& obj, const char* key) {
  const JsonValue* field = obj.find(key);
  if (field == nullptr) return 0;
  const i64 value = field->as_int();
  if (value < 0) {
    throw DomainError(std::string("request field '") + key +
                      "' must be non-negative");
  }
  return value;
}

}  // namespace

LoopbackPair make_loopback() {
  auto to_server = std::make_shared<LoopbackChannel>();
  auto to_client = std::make_shared<LoopbackChannel>();
  LoopbackPair pair;
  pair.client = std::make_unique<LoopbackEndpoint>(to_server, to_client);
  pair.server = std::make_unique<LoopbackEndpoint>(to_client, to_server);
  return pair;
}

const char* request_kind_name(RequestKind kind) {
  switch (kind) {
    case RequestKind::kPing: return "ping";
    case RequestKind::kSynth: return "synth";
    case RequestKind::kBatch: return "batch";
    case RequestKind::kStats: return "stats";
    case RequestKind::kSleep: return "sleep";
  }
  return "?";
}

const char* response_status_name(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk: return "ok";
    case ResponseStatus::kRejected: return "rejected";
    case ResponseStatus::kTimeout: return "timeout";
    case ResponseStatus::kError: return "error";
  }
  return "?";
}

std::string encode_request(const ServiceRequest& request) {
  JsonValue obj;
  obj.set("id", request.id);
  obj.set("kind", request_kind_name(request.kind));
  if (request.kind == RequestKind::kSynth ||
      request.kind == RequestKind::kBatch) {
    JsonValue problems = JsonValue::Array{};
    for (const auto& problem : request.problems) {
      problems.push_back(encode_problem(problem));
    }
    obj.set("problems", std::move(problems));
  }
  if (request.timeout_ms > 0) obj.set("timeout_ms", request.timeout_ms);
  if (request.kind == RequestKind::kSleep) {
    obj.set("sleep_ms", request.sleep_ms);
  }
  if (request.execute) obj.set("execute", true);
  if (request.tile.enabled()) {
    obj.set("tile", tile_shape_name(request.tile));
    if (request.tile.mode != TileMode::kAuto) {
      obj.set("tile_mode", tile_mode_name(request.tile.mode));
    }
    if (request.tile.buffer_depth != TileOptions{}.buffer_depth) {
      obj.set("tile_depth", request.tile.buffer_depth);
    }
  }
  return obj.dump();
}

ServiceRequest parse_request(const std::string& line) {
  const JsonValue obj = JsonValue::parse(line);
  if (!obj.is_object()) {
    throw DomainError("a request must be a JSON object, got " +
                      std::string(json_kind_name(obj.kind())));
  }
  ServiceRequest request;
  request.id = obj.at("id").as_string();
  const std::string& kind = obj.at("kind").as_string();
  if (kind == "ping") {
    request.kind = RequestKind::kPing;
  } else if (kind == "synth") {
    request.kind = RequestKind::kSynth;
  } else if (kind == "batch") {
    request.kind = RequestKind::kBatch;
  } else if (kind == "stats") {
    request.kind = RequestKind::kStats;
  } else if (kind == "sleep") {
    request.kind = RequestKind::kSleep;
  } else {
    throw DomainError("unknown request kind '" + kind +
                      "' (ping|synth|batch|stats|sleep)");
  }
  request.timeout_ms = optional_ms(obj, "timeout_ms");
  request.sleep_ms = optional_ms(obj, "sleep_ms");
  if (const JsonValue* execute = obj.find("execute")) {
    request.execute = execute->as_bool();
  }
  if (const JsonValue* tile = obj.find("tile")) {
    request.tile = parse_tile_shape(tile->as_string());
    if (const JsonValue* mode = obj.find("tile_mode")) {
      request.tile.mode = parse_tile_mode(mode->as_string());
    }
    if (const JsonValue* depth = obj.find("tile_depth")) {
      const i64 d = depth->as_int();
      if (d < 1) throw DomainError("tile_depth must be >= 1");
      request.tile.buffer_depth = d;
    }
  } else if (obj.find("tile_mode") != nullptr ||
             obj.find("tile_depth") != nullptr) {
    throw DomainError("tile_mode/tile_depth need a 'tile' shape");
  }
  if (request.kind == RequestKind::kSynth ||
      request.kind == RequestKind::kBatch) {
    const JsonValue* problems = obj.find("problems");
    if (problems == nullptr) {
      throw DomainError("a " + kind + " request needs a 'problems' array");
    }
    const auto& items = problems->as_array();
    if (request.kind == RequestKind::kSynth && items.size() != 1) {
      throw DomainError("a synth request carries exactly one problem, got " +
                        std::to_string(items.size()) +
                        " (use kind 'batch' for several)");
    }
    if (items.empty()) {
      throw DomainError("a batch request needs at least one problem");
    }
    for (std::size_t i = 0; i < items.size(); ++i) {
      request.problems.push_back(decode_problem(items[i], i));
    }
  }
  return request;
}

std::string encode_response(const ServiceResponse& response) {
  JsonValue obj;
  obj.set("id", response.id);
  obj.set("status", response_status_name(response.status));
  if (!response.error.empty()) obj.set("error", response.error);
  if (response.status == ResponseStatus::kRejected) {
    obj.set("retry_after_ms", response.retry_after_ms);
  }
  if (!response.results.empty()) {
    JsonValue results = JsonValue::Array{};
    for (const auto& result : response.results) {
      JsonValue item;
      item.set("name", result.name);
      item.set("cache_hit", result.cache_hit);
      item.set("report", encode_report(result.report));
      if (result.executed) {
        item.set("executed", true);
        item.set("execution_match", result.execution_match);
        item.set("engine", result.engine);
      }
      results.push_back(std::move(item));
    }
    obj.set("results", std::move(results));
  }
  if (!response.stats.is_null()) obj.set("stats", response.stats);
  return obj.dump();
}

ServiceResponse parse_response(const std::string& line) {
  const JsonValue obj = JsonValue::parse(line);
  if (!obj.is_object()) {
    throw DomainError("a response must be a JSON object, got " +
                      std::string(json_kind_name(obj.kind())));
  }
  ServiceResponse response;
  response.id = obj.at("id").as_string();
  const std::string& status = obj.at("status").as_string();
  if (status == "ok") {
    response.status = ResponseStatus::kOk;
  } else if (status == "rejected") {
    response.status = ResponseStatus::kRejected;
  } else if (status == "timeout") {
    response.status = ResponseStatus::kTimeout;
  } else if (status == "error") {
    response.status = ResponseStatus::kError;
  } else {
    throw DomainError("unknown response status '" + status +
                      "' (ok|rejected|timeout|error)");
  }
  if (const JsonValue* error = obj.find("error")) {
    response.error = error->as_string();
  }
  response.retry_after_ms = optional_ms(obj, "retry_after_ms");
  if (const JsonValue* results = obj.find("results")) {
    for (const auto& item : results->as_array()) {
      ServiceResult result;
      result.name = item.at("name").as_string();
      result.cache_hit = item.at("cache_hit").as_bool();
      result.report = decode_report(item.at("report"));
      if (const JsonValue* executed = item.find("executed")) {
        result.executed = executed->as_bool();
        result.execution_match = item.at("execution_match").as_bool();
        result.engine = item.at("engine").as_string();
      }
      response.results.push_back(std::move(result));
    }
  }
  if (const JsonValue* stats = obj.find("stats")) response.stats = *stats;
  return response;
}

}  // namespace nusys
