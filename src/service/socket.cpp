#include "service/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace nusys {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw TransportError(what + ": " + std::strerror(errno));
}

/// MSG_NOSIGNAL keeps a dead peer from raising SIGPIPE on Linux; macOS
/// spells the same contract SO_NOSIGPIPE, and a portable fallback of 0
/// still works because the tests and CLI ignore SIGPIPE anyway.
#ifdef MSG_NOSIGNAL
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;
#endif

}  // namespace

FdLineTransport::FdLineTransport(int fd) : fd_(fd) {
  NUSYS_REQUIRE(fd >= 0, "FdLineTransport needs a valid descriptor");
}

FdLineTransport::~FdLineTransport() { close(); }

void FdLineTransport::send_line(const std::string& line) {
  NUSYS_REQUIRE(line.find('\n') == std::string::npos,
                "a protocol line must not contain a newline");
  if (fd_ < 0) throw TransportError("send on a closed transport");
  std::string framed = line;
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                             kSendFlags);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::optional<std::string> FdLineTransport::recv_line() {
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (fd_ < 0) return std::nullopt;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      // A concurrent close() (server shutdown) surfaces as EBADF/ECONNRESET
      // here; treat every failure mode as end-of-stream for the reader.
      return std::nullopt;
    }
    if (n == 0) return std::nullopt;  // Peer closed.
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

void FdLineTransport::close() {
  const int fd = fd_;
  if (fd < 0) return;
  fd_ = -1;
  ::shutdown(fd, SHUT_RDWR);  // Wakes a reader blocked in recv().
  ::close(fd);
}

std::unique_ptr<FdLineTransport> connect_tcp(const std::string& host,
                                             int port) {
  NUSYS_REQUIRE(port > 0 && port < 65536, "connect_tcp needs a valid port");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw TransportError("connect_tcp: bad IPv4 address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd);
    throw TransportError("connect to " + host + ":" + std::to_string(port) +
                         " failed: " + detail);
  }
  return std::make_unique<FdLineTransport>(fd);
}

TcpListener::TcpListener(int port) {
  NUSYS_REQUIRE(port >= 0 && port < 65536, "TcpListener needs a valid port");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    throw TransportError("cannot listen on port " + std::to_string(port) +
                         ": " + detail);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    throw TransportError("getsockname: " + detail);
  }
  port_ = static_cast<int>(ntohs(bound.sin_port));
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    throw TransportError("self-pipe: " + detail);
  }
  wake_rx_ = pipe_fds[0];
  wake_tx_ = pipe_fds[1];
}

TcpListener::~TcpListener() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_rx_ >= 0) ::close(wake_rx_);
  if (wake_tx_ >= 0) ::close(wake_tx_);
}

std::unique_ptr<FdLineTransport> TcpListener::accept() {
  while (true) {
    pollfd fds[2];
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    fds[0].revents = 0;
    fds[1].fd = wake_rx_;
    fds[1].events = POLLIN;
    fds[1].revents = 0;
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    if ((fds[1].revents & POLLIN) != 0) return nullptr;  // stop() fired.
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      throw_errno("accept");
    }
    return std::make_unique<FdLineTransport>(fd);
  }
}

void TcpListener::stop() {
  const char byte = 'x';
  // write(2) is async-signal-safe; a full pipe just means a stop is
  // already pending.
  [[maybe_unused]] const ssize_t n = ::write(wake_tx_, &byte, 1);
}

}  // namespace nusys
