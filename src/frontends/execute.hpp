// Differential execution of synthesized designs against each family's
// sequential reference — one code path shared by the CLI (`nusys synth
// --family`), the batch driver (`nusys batch --execute`) and the service
// (requests with "execute": true), so all three report execution through
// identical instances and comparisons.
//
// Each call draws a reproducible random instance from `seed`, runs it
// through the engine-pinned executor of the problem's family, and
// compares bit-for-bit against the family's sequential reference. With
// the compiled engine selected (the process default) every executor runs
// on the wavefront backend of systolic/wavefront.hpp; pinning
// EngineKind::kInterpretive replays the same instance on the original
// globally-clocked engine — the differential oracle.
#pragma once

#include <cstdint>

#include "designs/dp_array.hpp"
#include "partition/tile.hpp"
#include "support/cancel.hpp"
#include "synth/batch.hpp"
#include "synth/design.hpp"
#include "systolic/engine_select.hpp"

namespace nusys {

/// Outcome of executing one synthesized design.
struct DesignExecution {
  EngineKind engine = EngineKind::kCompiled;  ///< Engine that ran it.
  bool match = false;  ///< Result equals the sequential reference.
};

/// Executes the best design of a uniform-kind problem (conv/mm/lu/sw) on
/// a random instance seeded by `seed`. Throws ContractError on a
/// pipeline-kind problem and like the family executor on an infeasible
/// mapping.
[[nodiscard]] DesignExecution execute_uniform_design(
    const BatchProblem& problem, const Design& best, std::uint64_t seed,
    EngineKind engine, const CancelToken* cancel = nullptr);

/// Tiled variant: runs the same instance through the partition subsystem
/// on at most tile.rows x tile.cols cells (disabled options run flat).
/// The comparison against the sequential reference is unchanged — tiling
/// must be result-invisible.
[[nodiscard]] DesignExecution execute_uniform_design(
    const BatchProblem& problem, const Design& best, std::uint64_t seed,
    const TileOptions& tile, EngineKind engine,
    const CancelToken* cancel = nullptr);

/// Same for pipeline-kind problems: "pipeline" runs a random matrix
/// chain, "fw" a random DAG closure, both through run_dp_on_array.
[[nodiscard]] DesignExecution execute_pipeline_design(
    const BatchProblem& problem, const DPArrayDesign& best,
    std::uint64_t seed, EngineKind engine,
    const CancelToken* cancel = nullptr);

/// Tiled variant: clusters the DP design onto the target shape through
/// tiled_dp_design before running (LSGP; kLPGS throws).
[[nodiscard]] DesignExecution execute_pipeline_design(
    const BatchProblem& problem, const DPArrayDesign& best,
    std::uint64_t seed, const TileOptions& tile, EngineKind engine,
    const CancelToken* cancel = nullptr);

}  // namespace nusys
