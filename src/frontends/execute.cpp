#include "frontends/execute.hpp"

#include "conv/convolution.hpp"
#include "designs/uniform_array.hpp"
#include "dp/problems.hpp"
#include "dp/sequential.hpp"
#include "frontends/floyd_warshall.hpp"
#include "frontends/lu.hpp"
#include "frontends/matmul.hpp"
#include "frontends/smith_waterman.hpp"
#include "partition/dp_tiling.hpp"
#include "partition/tiled_uniform.hpp"
#include "support/errors.hpp"
#include "support/rng.hpp"

namespace nusys {

namespace {

i64 effective_m(const BatchProblem& p) { return p.m > 0 ? p.m : p.n; }
i64 effective_p(const BatchProblem& p) { return p.p > 0 ? p.p : p.n; }

bool run_convolution(const BatchProblem& problem, const Design& best,
                     Rng& rng, const TileOptions& tile, EngineKind engine,
                     const CancelToken* cancel) {
  const auto x =
      rng.uniform_vector(static_cast<std::size_t>(problem.n), -9, 9);
  const auto w =
      rng.uniform_vector(static_cast<std::size_t>(problem.s), -9, 9);
  const auto rec = batch_recurrence(problem);
  const UniformArrayRun run =
      tile.enabled()
          ? run_uniform_design_tiled(rec, convolution_semantics(x, w),
                                     best.timing, best.space, best.net, tile,
                                     engine, cancel)
          : run_convolution_design(rec, x, w, best.timing, best.space,
                                   best.net, engine, cancel);
  // Finals sit on the last reduction plane: k = s for the backward
  // recurrence (4), k = 1 for the forward recurrence (5).
  const i64 final_k = problem.forward ? 1 : problem.s;
  std::vector<i64> y(static_cast<std::size_t>(problem.n), 0);
  bool shape_ok = run.finals.size() == static_cast<std::size_t>(problem.n);
  for (const auto& [point, value] : run.finals) {
    shape_ok = shape_ok && point[1] == final_k;
    y[static_cast<std::size_t>(point[0] - 1)] = value;
  }
  return shape_ok && y == direct_convolution(x, w);
}

}  // namespace

DesignExecution execute_uniform_design(const BatchProblem& problem,
                                       const Design& best,
                                       std::uint64_t seed, EngineKind engine,
                                       const CancelToken* cancel) {
  return execute_uniform_design(problem, best, seed, TileOptions{}, engine,
                                cancel);
}

DesignExecution execute_uniform_design(const BatchProblem& problem,
                                       const Design& best, std::uint64_t seed,
                                       const TileOptions& tile,
                                       EngineKind engine,
                                       const CancelToken* cancel) {
  Rng rng(seed);
  DesignExecution out;
  out.engine = engine;
  switch (problem.kind) {
    case BatchProblem::Kind::kConvolution:
      out.match = run_convolution(problem, best, rng, tile, engine, cancel);
      break;
    case BatchProblem::Kind::kMatMul: {
      const auto ins = random_matmul_instance(problem.n, effective_m(problem),
                                              effective_p(problem), rng);
      out.match = run_matmul_on_design(ins, best.timing, best.space, best.net,
                                       tile, engine, cancel) ==
                  matmul_reference(ins);
      break;
    }
    case BatchProblem::Kind::kLU: {
      const auto ins = random_exact_lu_instance(problem.n, rng);
      out.match = run_lu_on_design(ins, best.timing, best.space, best.net,
                                   tile, engine, cancel) == lu_reference(ins);
      break;
    }
    case BatchProblem::Kind::kSmithWaterman: {
      const auto ins = random_sw_instance(problem.n, effective_m(problem),
                                          problem.band, rng);
      out.match = run_sw_on_design(ins, best.timing, best.space, best.net,
                                   tile, engine, cancel) == sw_reference(ins);
      break;
    }
    case BatchProblem::Kind::kPipeline:
    case BatchProblem::Kind::kFloydWarshall:
      throw ContractError("execute_uniform_design: '" + problem.name +
                          "' is a pipeline-kind problem");
  }
  return out;
}

DesignExecution execute_pipeline_design(const BatchProblem& problem,
                                        const DPArrayDesign& best,
                                        std::uint64_t seed, EngineKind engine,
                                        const CancelToken* cancel) {
  return execute_pipeline_design(problem, best, seed, TileOptions{}, engine,
                                 cancel);
}

DesignExecution execute_pipeline_design(const BatchProblem& problem,
                                        const DPArrayDesign& best,
                                        std::uint64_t seed,
                                        const TileOptions& tile,
                                        EngineKind engine,
                                        const CancelToken* cancel) {
  NUSYS_REQUIRE(batch_uses_pipeline(problem),
                "execute_pipeline_design: '" + problem.name +
                    "' is a canonic-recurrence problem");
  Rng rng(seed);
  DesignExecution out;
  out.engine = engine;
  const DPArrayDesign design = tiled_dp_design(best, problem.n, tile);
  if (problem.kind == BatchProblem::Kind::kFloydWarshall) {
    const auto ins = random_dag_instance(problem.n, rng);
    const auto run = run_dp_on_array(fw_problem(ins), design, engine, cancel);
    out.match = run.table == fw_reference(ins);
  } else {
    const auto chain = random_matrix_chain(problem.n, rng);
    const auto run = run_dp_on_array(chain, design, engine, cancel);
    out.match = run.table == solve_sequential(chain);
  }
  return out;
}

}  // namespace nusys
