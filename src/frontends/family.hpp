// Workload families the frontend lowerings cover (beyond convolution and
// the paper's Sec. IV dynamic-programming instance).
//
// Each family ships three artifacts, which together make the differential
// golden-corpus layer possible:
//   1. a *lowering* of the source recurrence onto the existing IR — a
//      CanonicRecurrence for the uniform families (matrix multiply, LU,
//      banded Smith-Waterman) or a NonUniformSpec for Floyd-Warshall,
//      whose variable-distance (k-indexed) reads are handled by expansion
//      into the two-step refinement exactly like the paper's DP instance;
//   2. a *sequential reference executor* in exact int64 arithmetic, the
//      golden baseline every systolic run must match bit-for-bit;
//   3. *cell semantics* driving the generic executors
//      (run_uniform_design / run_dp_on_array) for any synthesized design.
#pragma once

#include <string>
#include <vector>

namespace nusys {

/// One frontend workload family.
enum class Family {
  kMatMul,          ///< C = A·B, the uniform 3-D accumulation.
  kLU,              ///< LU decomposition without pivoting (integer-exact).
  kFloydWarshall,   ///< Transitive closure / APSP on an ordered DAG.
  kSmithWaterman,   ///< Banded local sequence alignment.
};

/// Canonical short name: "mm", "lu", "fw", "sw".
[[nodiscard]] const char* family_name(Family family);

/// Human-readable name: "matrix multiply", ...
[[nodiscard]] const char* family_title(Family family);

/// Parses a short name; throws DomainError on an unknown one.
[[nodiscard]] Family parse_family(const std::string& name);

/// All families, in declaration order (for sweeps and corpora).
[[nodiscard]] const std::vector<Family>& all_families();

}  // namespace nusys
