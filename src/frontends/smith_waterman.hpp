// Banded Smith-Waterman frontend: local sequence alignment restricted to
// the diagonal band |i - j| <= band, lowered to the canonic form.
//
//   H(i,j) = max(0, H(i-1,j-1) + score(i,j), H(i-1,j) - gap, H(i,j-1) - gap)
//
// The canonic form allows one constant dependence per variable, so the
// three reads become three variables: the accumulator h carries (1,1) and
// two copy streams p:(1,0), q:(0,1) forward the freshly computed H via the
// UniformSemantics::emit hook. The band edges are *variable-distance* in
// the source program (a cell's in-band neighbourhood depends on where the
// band cuts); lowering makes them uniform by keeping the dependence
// vectors constant and moving the variability into the boundary function:
// a producer outside the band injects kSWBandEdge, the identity of max
// after the gap penalty, so band-edge cells need no special-cased firing.
// The sequential reference uses the identical convention and the full H
// table (collected through the observe hook) must match bit-for-bit.
//
// The 2-D domain maps to 1-D arrays (e.g. T=(1,1), S=(1 0) on a
// bidirectional linear net): the anti-diagonal wavefront classic.
#pragma once

#include <limits>
#include <vector>

#include "designs/uniform_array.hpp"
#include "ir/recurrence.hpp"
#include "partition/tile.hpp"
#include "support/rng.hpp"

namespace nusys {

/// Injected for neighbours cut off by the band: low enough to never win
/// the max, high enough that subtracting the gap penalty cannot overflow.
inline constexpr i64 kSWBandEdge = std::numeric_limits<i64>::min() / 4;

/// A banded alignment instance over small integer alphabets.
struct SWInstance {
  std::vector<i64> a;  ///< First sequence, length n.
  std::vector<i64> b;  ///< Second sequence, length m.
  i64 band = 0;        ///< Half-width: cells with |i - j| <= band.
  i64 match = 3;       ///< Score for a[i-1] == b[j-1].
  i64 mismatch = -1;   ///< Score otherwise.
  i64 gap = 2;         ///< Penalty subtracted per insertion/deletion.

  [[nodiscard]] i64 n() const noexcept { return static_cast<i64>(a.size()); }
  [[nodiscard]] i64 m() const noexcept { return static_cast<i64>(b.size()); }
};

/// A reproducible instance: sequences over {0..3} with a planted common
/// stretch so alignments score above the trivial zero.
[[nodiscard]] SWInstance random_sw_instance(i64 n, i64 m, i64 band, Rng& rng);

/// Golden baseline: the banded table in row-major order, returned as an
/// n x m matrix with zeros outside the band.
[[nodiscard]] std::vector<std::vector<i64>> sw_reference(
    const SWInstance& ins);

/// The best local-alignment score: the maximum entry of `h` (>= 0).
[[nodiscard]] i64 sw_best_score(const std::vector<std::vector<i64>>& h);

/// The canonic recurrence over { (i,j) in [1,n]x[1,m] : |i-j| <= band }
/// with dependences h:(1,1), p:(1,0), q:(0,1).
[[nodiscard]] CanonicRecurrence sw_recurrence(i64 n, i64 m, i64 band);

/// Cell semantics; `instance` must outlive the result. `h_out` receives
/// every computed H value through the observe hook and must be an n x m
/// zero matrix outliving the run.
[[nodiscard]] UniformSemantics sw_semantics(
    const SWInstance& ins, std::vector<std::vector<i64>>& h_out);

/// Executes `ins` under (timing, space) on `net`; returns the full H
/// table in the same shape as sw_reference. Uses the process-default
/// engine (see systolic/engine_select).
[[nodiscard]] std::vector<std::vector<i64>> run_sw_on_design(
    const SWInstance& ins, const LinearSchedule& timing, const IntMat& space,
    const Interconnect& net);

/// Engine-pinned variant; the compiled engine polls `cancel` between
/// wavefronts.
[[nodiscard]] std::vector<std::vector<i64>> run_sw_on_design(
    const SWInstance& ins, const LinearSchedule& timing, const IntMat& space,
    const Interconnect& net, EngineKind engine,
    const CancelToken* cancel = nullptr);

/// Tiled variant: at most tile.rows x tile.cols physical cells (see
/// partition/tiled_uniform.hpp); bit-identical to the flat run.
[[nodiscard]] std::vector<std::vector<i64>> run_sw_on_design(
    const SWInstance& ins, const LinearSchedule& timing, const IntMat& space,
    const Interconnect& net, const TileOptions& tile, EngineKind engine,
    const CancelToken* cancel = nullptr);

}  // namespace nusys
