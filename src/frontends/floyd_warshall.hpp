// Floyd-Warshall frontend: all-pairs shortest paths / transitive closure
// on a topologically ordered DAG, lowered to the non-uniform IR.
//
// With vertices numbered in topological order every i -> j path visits
// only intermediates i < k < j, so the classic k-outermost recurrence
// collapses to the paper's interval form
//
//    c(i,j) = min( w(i,j), min_{i<k<j} c(i,k) + c(k,j) ),
//
// a second non-uniform reduction beside the Sec. IV DP instance. The
// k-indexed reads c(i,k) and c(k,j) are *variable-distance* dependences —
// (0, j-k) and (i-k, 0) — and are handled exactly like the paper's DP:
// expansion into the two-step refinement via the NonConstantDep templates
// of fw_spec, which synthesize_nonuniform turns into a two-module design.
//
// Missing edges carry the kFWUnreachable sentinel; the combine clamps at
// the sentinel so "no path" stays bit-identical between the systolic run
// and the independent full-matrix reference (which scans *all* k, not just
// the interval, and must still agree on the upper triangle).
//
// The 0/1 closure variant rides the same lowering: under the encoding
// 0 = reachable, 1 = not, the reduction min acts as OR and max as AND.
#pragma once

#include <vector>

#include "dp/problems.hpp"
#include "dp/table.hpp"
#include "ir/nonuniform.hpp"
#include "support/rng.hpp"

namespace nusys {

/// Sentinel for "no edge" / "no path". Small enough that sums of two
/// sentinels stay far from int64 overflow, large enough that no real path
/// cost (positive weights <= 20, < n hops) ever reaches it.
inline constexpr i64 kFWUnreachable = i64{1} << 40;

/// A weighted DAG on vertices 1..n in topological order: w[i-1][j-1] is
/// the weight of edge i -> j (only i < j is meaningful), kFWUnreachable
/// when the edge is absent.
struct FWInstance {
  i64 n = 0;
  std::vector<std::vector<i64>> w;
};

/// A reproducible random DAG: each forward edge present with probability
/// ~55%, weights in [1, 20].
[[nodiscard]] FWInstance random_dag_instance(i64 n, Rng& rng);

/// The interval-DP lowering: init c(i,i+1) = w(i,i+1), combine
/// f(i,k,j,x,y) = min(w(i,j), x + y) clamped at kFWUnreachable.
/// `instance` must outlive the result.
[[nodiscard]] IntervalDPProblem fw_problem(const FWInstance& ins);

/// The 0/1 transitive-closure lowering (0 = reachable, 1 = not):
/// combine f = min(edge(i,j), max(x, y)).
[[nodiscard]] IntervalDPProblem fw_closure_problem(const FWInstance& ins);

/// Independent golden baseline: the textbook k-outermost triple loop over
/// the *full* n x n distance matrix (0 diagonal, sentinel elsewhere),
/// returned as the upper triangle.
[[nodiscard]] DPTable fw_reference(const FWInstance& ins);

/// Independent 0/1 closure baseline via the boolean triple loop.
[[nodiscard]] DPTable fw_closure_reference(const FWInstance& ins);

/// The NonUniformSpec whose two variable-distance templates are the
/// expansions of the k-indexed reads above; feeds synthesize_nonuniform.
[[nodiscard]] NonUniformSpec fw_spec(i64 n);

}  // namespace nusys
