#include "frontends/family.hpp"

#include "support/errors.hpp"

namespace nusys {

const char* family_name(Family family) {
  switch (family) {
    case Family::kMatMul:
      return "mm";
    case Family::kLU:
      return "lu";
    case Family::kFloydWarshall:
      return "fw";
    case Family::kSmithWaterman:
      return "sw";
  }
  throw ContractError("family_name: unknown family");
}

const char* family_title(Family family) {
  switch (family) {
    case Family::kMatMul:
      return "matrix multiply";
    case Family::kLU:
      return "LU decomposition";
    case Family::kFloydWarshall:
      return "Floyd-Warshall closure";
    case Family::kSmithWaterman:
      return "banded Smith-Waterman";
  }
  throw ContractError("family_title: unknown family");
}

Family parse_family(const std::string& name) {
  if (name == "mm") return Family::kMatMul;
  if (name == "lu") return Family::kLU;
  if (name == "fw") return Family::kFloydWarshall;
  if (name == "sw") return Family::kSmithWaterman;
  throw DomainError("unknown workload family '" + name + "' (mm|lu|fw|sw)");
}

const std::vector<Family>& all_families() {
  static const std::vector<Family> families{
      Family::kMatMul, Family::kLU, Family::kFloydWarshall,
      Family::kSmithWaterman};
  return families;
}

}  // namespace nusys
