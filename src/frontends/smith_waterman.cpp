#include "frontends/smith_waterman.hpp"

#include <algorithm>

#include "designs/uniform_compiled.hpp"
#include "partition/tiled_uniform.hpp"
#include "support/errors.hpp"

namespace nusys {

namespace {

std::size_t idx(i64 v) { return static_cast<std::size_t>(v - 1); }

bool in_band(const SWInstance& ins, i64 i, i64 j) {
  const i64 off = i - j;
  return -ins.band <= off && off <= ins.band;
}

i64 cell_score(const SWInstance& ins, i64 i, i64 j) {
  return ins.a[idx(i)] == ins.b[idx(j)] ? ins.match : ins.mismatch;
}

i64 local_max(i64 diag, i64 up, i64 left) {
  return std::max<i64>(0, std::max(diag, std::max(up, left)));
}

/// Compiled-engine counterpart of sw_semantics. Operand order follows
/// sw_recurrence: h = 0 (accumulator), p = 1, q = 2.
struct SWCompiledSemantics {
  const SWInstance* ins = nullptr;
  std::vector<std::vector<i64>>* h_out = nullptr;
  std::size_t* observed = nullptr;

  // Both copy streams forward the freshly computed H.
  static constexpr bool kComputedForward = true;

  [[nodiscard]] Value compute(const IntVec& p, OperandView in) const {
    const i64 diag = checked_add(in[0], cell_score(*ins, p[0], p[1]));
    const i64 up = checked_sub(in[1], ins->gap);
    const i64 left = checked_sub(in[2], ins->gap);
    return local_max(diag, up, left);
  }
  void compute_block(const IntVec* pts, const Value* const* cols,
                     std::uint32_t base, std::uint32_t len,
                     Value* outs) const {
    // Per-cell match/mismatch scores are a data-dependent gather; stage
    // them scalar in chunks, then run the vector max-chain over the chunk.
    constexpr std::uint32_t kChunk = 256;
    Value score[kChunk];
    for (std::uint32_t at = 0; at < len; at += kChunk) {
      const std::uint32_t run = std::min(kChunk, len - at);
      for (std::uint32_t i = 0; i < run; ++i) {
        const IntVec& p = pts[at + i];
        score[i] = cell_score(*ins, p[0], p[1]);
      }
      simd::sw_cell_max_checked(cols[0] + base + at, score,
                                cols[1] + base + at, cols[2] + base + at,
                                ins->gap, outs + at, run);
    }
  }
  [[nodiscard]] Value boundary(std::size_t var, const IntVec& point) const {
    // The diagonal producer (i-1, j-1) preserves the band offset, so it is
    // only missing at the rectangle edge; p/q producers can also fall off
    // the band and then contribute the max identity.
    if (var == 0) return 0;
    if (var == 1) return point[0] == 1 ? 0 : kSWBandEdge;
    return point[1] == 1 ? 0 : kSWBandEdge;
  }
  [[nodiscard]] Value forward(std::size_t, const IntVec&, OperandView,
                              Value out) const {
    return out;
  }
  void observe(const IntVec& point, Value out) const {
    ++*observed;
    (*h_out)[idx(point[0])][idx(point[1])] = out;
  }
};

}  // namespace

SWInstance random_sw_instance(i64 n, i64 m, i64 band, Rng& rng) {
  NUSYS_REQUIRE(n >= 1 && m >= 1, "sw instance needs nonempty sequences");
  NUSYS_REQUIRE(band >= 1, "sw instance needs band >= 1");
  SWInstance ins;
  ins.band = band;
  ins.a = rng.uniform_vector(static_cast<std::size_t>(n), 0, 3);
  ins.b = rng.uniform_vector(static_cast<std::size_t>(m), 0, 3);
  // Plant a common stretch near the main diagonal so the best local
  // alignment is nontrivial and lies inside the band.
  const i64 len = std::min(n, m) / 2;
  if (len >= 1) {
    const i64 sa = rng.uniform(0, n - len);
    const i64 sb = std::clamp(sa + rng.uniform(-band, band), i64{0}, m - len);
    for (i64 t = 0; t < len; ++t) {
      ins.b[static_cast<std::size_t>(sb + t)] =
          ins.a[static_cast<std::size_t>(sa + t)];
    }
  }
  return ins;
}

std::vector<std::vector<i64>> sw_reference(const SWInstance& ins) {
  const i64 n = ins.n();
  const i64 m = ins.m();
  std::vector<std::vector<i64>> h(static_cast<std::size_t>(n),
                                  std::vector<i64>(static_cast<std::size_t>(m), 0));
  // Neighbour lookup under the lowering's convention: row/column zero is 0,
  // a neighbour cut off by the band contributes kSWBandEdge.
  const auto read = [&](i64 i, i64 j) -> i64 {
    if (i == 0 || j == 0) return 0;
    if (!in_band(ins, i, j)) return kSWBandEdge;
    return h[idx(i)][idx(j)];
  };
  for (i64 i = 1; i <= n; ++i) {
    for (i64 j = 1; j <= m; ++j) {
      if (!in_band(ins, i, j)) continue;
      const i64 diag = checked_add(read(i - 1, j - 1), cell_score(ins, i, j));
      const i64 up = checked_sub(read(i - 1, j), ins.gap);
      const i64 left = checked_sub(read(i, j - 1), ins.gap);
      h[idx(i)][idx(j)] = local_max(diag, up, left);
    }
  }
  return h;
}

i64 sw_best_score(const std::vector<std::vector<i64>>& h) {
  i64 best = 0;
  for (const auto& row : h) {
    for (const i64 v : row) best = std::max(best, v);
  }
  return best;
}

CanonicRecurrence sw_recurrence(i64 n, i64 m, i64 band) {
  NUSYS_REQUIRE(n >= 1 && m >= 1 && band >= 1, "sw recurrence needs n, m, band >= 1");
  DependenceSet deps;
  deps.add("h", IntVec({1, 1}));
  deps.add("p", IntVec({1, 0}));
  deps.add("q", IntVec({0, 1}));
  return CanonicRecurrence(
      "sw",
      IndexDomain::box({"i", "j"}, {1, 1}, {n, m})
          .with_constraint(AffineExpr(IntVec({-1, 1}), band))   // j - i + band
          .with_constraint(AffineExpr(IntVec({1, -1}), band)),  // i - j + band
      std::move(deps));
}

UniformSemantics sw_semantics(const SWInstance& ins,
                              std::vector<std::vector<i64>>& h_out) {
  UniformSemantics s;
  s.accumulator = std::string{"h"};
  s.compute = [&ins](const IntVec& p, const std::map<std::string, Value>& in) {
    const i64 diag = checked_add(in.at("h"), cell_score(ins, p[0], p[1]));
    const i64 up = checked_sub(in.at("p"), ins.gap);
    const i64 left = checked_sub(in.at("q"), ins.gap);
    return local_max(diag, up, left);
  };
  s.boundary = [&ins](const std::string& var, const IntVec& point) -> Value {
    const i64 i = point[0];
    const i64 j = point[1];
    // The diagonal producer (i-1, j-1) preserves the band offset, so it is
    // only missing at the rectangle edge; p/q producers can also fall off
    // the band and then contribute the max identity.
    if (var == "h") return 0;
    if (var == "p") return i == 1 ? 0 : kSWBandEdge;
    return j == 1 ? 0 : kSWBandEdge;
  };
  s.emit = [](const std::string&, const IntVec&,
              const std::map<std::string, Value>&, Value out) -> Value {
    // Both copy streams forward the freshly computed H.
    return out;
  };
  s.observe = [&h_out](const IntVec& point, Value out) {
    h_out[idx(point[0])][idx(point[1])] = out;
  };
  return s;
}

std::vector<std::vector<i64>> run_sw_on_design(const SWInstance& ins,
                                               const LinearSchedule& timing,
                                               const IntMat& space,
                                               const Interconnect& net) {
  return run_sw_on_design(ins, timing, space, net, engine_kind(), nullptr);
}

std::vector<std::vector<i64>> run_sw_on_design(const SWInstance& ins,
                                               const LinearSchedule& timing,
                                               const IntMat& space,
                                               const Interconnect& net,
                                               EngineKind engine,
                                               const CancelToken* cancel) {
  const auto rec = sw_recurrence(ins.n(), ins.m(), ins.band);
  std::vector<std::vector<i64>> h(
      static_cast<std::size_t>(ins.n()),
      std::vector<i64>(static_cast<std::size_t>(ins.m()), 0));
  std::size_t observed = 0;
  if (engine == EngineKind::kCompiled) {
    (void)run_uniform_compiled(rec, SWCompiledSemantics{&ins, &h, &observed},
                               /*accumulator_index=*/0, timing, space, net,
                               cancel);
  } else {
    auto semantics = sw_semantics(ins, h);
    const auto fill = std::move(semantics.observe);
    semantics.observe = [&](const IntVec& point, Value out) {
      ++observed;
      fill(point, out);
    };
    (void)run_uniform_design(rec, semantics, timing, space, net, engine,
                             cancel);
  }
  NUSYS_REQUIRE(observed == rec.domain().size(),
                "sw run did not compute every band cell");
  return h;
}

std::vector<std::vector<i64>> run_sw_on_design(const SWInstance& ins,
                                               const LinearSchedule& timing,
                                               const IntMat& space,
                                               const Interconnect& net,
                                               const TileOptions& tile,
                                               EngineKind engine,
                                               const CancelToken* cancel) {
  if (!tile.enabled()) {
    return run_sw_on_design(ins, timing, space, net, engine, cancel);
  }
  const auto rec = sw_recurrence(ins.n(), ins.m(), ins.band);
  std::vector<std::vector<i64>> h(
      static_cast<std::size_t>(ins.n()),
      std::vector<i64>(static_cast<std::size_t>(ins.m()), 0));
  std::size_t observed = 0;
  auto semantics = sw_semantics(ins, h);
  const auto fill = std::move(semantics.observe);
  semantics.observe = [&](const IntVec& point, Value out) {
    ++observed;
    fill(point, out);
  };
  (void)run_uniform_design_tiled(rec, semantics, timing, space, net, tile,
                                 engine, cancel);
  NUSYS_REQUIRE(observed == rec.domain().size(),
                "sw run did not compute every band cell");
  return h;
}

}  // namespace nusys
