// Matrix-multiply frontend: C = A·B lowered to the canonic form.
//
// The textbook accumulation  c(i,j,k) = c(i,j,k-1) + A[i][k]·B[k][j]  is
// already uniform after broadcast elimination: the partial sum c carries
// dependence (0,0,1), the A operand pipelines along j with (0,1,0) and the
// B operand along i with (1,0,0) — the AutoSA `mm` kernel in this
// library's IR. Any (T, S) the synthesizer finds on a 2-D interconnect
// executes through run_uniform_design with the semantics below; results
// are exact int64 and must match matmul_reference bit-for-bit.
#pragma once

#include <vector>

#include "designs/uniform_array.hpp"
#include "ir/recurrence.hpp"
#include "partition/tile.hpp"
#include "support/rng.hpp"

namespace nusys {

/// Exact integer matrices, row-major: a is n x p, b is p x m.
struct MatMulInstance {
  i64 n = 0;  ///< Rows of A and C.
  i64 m = 0;  ///< Columns of B and C.
  i64 p = 0;  ///< Columns of A / rows of B (the reduction length).
  std::vector<std::vector<i64>> a;
  std::vector<std::vector<i64>> b;
};

/// A reproducible random instance with entries in [-9, 9].
[[nodiscard]] MatMulInstance random_matmul_instance(i64 n, i64 m, i64 p,
                                                    Rng& rng);

/// The golden baseline: the n x m product in the canonical k order.
[[nodiscard]] std::vector<std::vector<i64>> matmul_reference(
    const MatMulInstance& instance);

/// The canonic recurrence over { (i,j,k) | 1<=i<=n, 1<=j<=m, 1<=k<=p }
/// with dependences c:(0,0,1), a:(0,1,0), b:(1,0,0).
[[nodiscard]] CanonicRecurrence matmul_recurrence(i64 n, i64 m, i64 p);

/// Cell semantics for the recurrence; `instance` must outlive the result.
[[nodiscard]] UniformSemantics matmul_semantics(const MatMulInstance& ins);

/// Executes `ins` under (timing, space) on `net` and assembles C from the
/// final accumulator values (the k = p plane). Throws like
/// run_uniform_design on an infeasible mapping. Uses the process-default
/// engine (see systolic/engine_select).
[[nodiscard]] std::vector<std::vector<i64>> run_matmul_on_design(
    const MatMulInstance& ins, const LinearSchedule& timing,
    const IntMat& space, const Interconnect& net);

/// Engine-pinned variant. The compiled engine runs a family-specialized
/// wavefront executor (operand access inlined, no name lookups) and polls
/// `cancel` between wavefronts; the interpretive engine ignores it.
[[nodiscard]] std::vector<std::vector<i64>> run_matmul_on_design(
    const MatMulInstance& ins, const LinearSchedule& timing,
    const IntMat& space, const Interconnect& net, EngineKind engine,
    const CancelToken* cancel = nullptr);

/// Tiled variant: executes the same design on at most tile.rows x
/// tile.cols physical cells (see partition/tiled_uniform.hpp). Results
/// are bit-identical to the flat run; disabled options run flat.
[[nodiscard]] std::vector<std::vector<i64>> run_matmul_on_design(
    const MatMulInstance& ins, const LinearSchedule& timing,
    const IntMat& space, const Interconnect& net, const TileOptions& tile,
    EngineKind engine, const CancelToken* cancel = nullptr);

}  // namespace nusys
