#include "frontends/lu.hpp"

#include <string>

#include "designs/uniform_compiled.hpp"
#include "partition/tiled_uniform.hpp"
#include "support/checked.hpp"
#include "support/errors.hpp"

namespace nusys {

namespace {

std::size_t idx(i64 v) { return static_cast<std::size_t>(v - 1); }

i64 exact_div(i64 a, i64 b) {
  NUSYS_VALIDATE(b != 0, "lu: zero pivot (instance needs pivoting)");
  NUSYS_VALIDATE(a % b == 0, "lu: pivot division " + std::to_string(a) + "/" +
                                 std::to_string(b) + " is not integer-exact");
  return a / b;
}

/// Compiled-engine counterpart of lu_semantics. Operand order follows
/// lu_recurrence: a = 0 (accumulator), u = 1, l = 2.
struct LUCompiledSemantics {
  const LUInstance* ins = nullptr;

  [[nodiscard]] Value compute(const IntVec& p, OperandView in) const {
    const i64 k = p[0];
    const i64 i = p[1];
    const i64 j = p[2];
    if (i == k) return in[0];                     // Row points define u(k, j).
    if (j == k) return exact_div(in[0], in[1]);   // l(i, k).
    return checked_sub(in[0], checked_mul(in[2], in[1]));
  }
  [[nodiscard]] Value boundary(std::size_t var, const IntVec& point) const {
    // a enters the k = 1 plane with the original matrix; u and l boundary
    // inputs (on the i = k and j = k planes) are never read by compute.
    if (var == 0) return ins->a[idx(point[1])][idx(point[2])];
    return 0;
  }
  [[nodiscard]] Value forward(std::size_t var, const IntVec& p,
                              OperandView in, Value out) const {
    const i64 k = p[0];
    if (var == 1) {
      // Row points originate the pivot-row stream; below them it passes.
      return p[1] == k ? out : in[1];
    }
    // Column points originate the multiplier stream (out == a/u there).
    return p[2] == k ? out : in[2];
  }
  void observe(const IntVec&, Value) const {}
};

}  // namespace

LUInstance random_exact_lu_instance(i64 n, Rng& rng) {
  NUSYS_REQUIRE(n >= 1, "lu instance needs n >= 1");
  // Draw L unit lower triangular and U upper triangular with a nonzero
  // diagonal, then multiply: elimination of A = L·U reproduces exactly
  // these integer factors, so every division along the way is exact.
  std::vector<std::vector<i64>> l(static_cast<std::size_t>(n),
                                  std::vector<i64>(static_cast<std::size_t>(n), 0));
  std::vector<std::vector<i64>> u = l;
  for (i64 i = 1; i <= n; ++i) {
    for (i64 j = 1; j <= n; ++j) {
      if (i == j) {
        l[idx(i)][idx(j)] = 1;
        u[idx(i)][idx(j)] = rng.uniform(1, 4);
      } else if (i > j) {
        l[idx(i)][idx(j)] = rng.uniform(-3, 3);
      } else {
        u[idx(i)][idx(j)] = rng.uniform(-3, 3);
      }
    }
  }
  LUInstance ins;
  ins.n = n;
  ins.a.assign(static_cast<std::size_t>(n),
               std::vector<i64>(static_cast<std::size_t>(n), 0));
  for (i64 i = 1; i <= n; ++i) {
    for (i64 j = 1; j <= n; ++j) {
      i64 acc = 0;
      for (i64 k = 1; k <= n; ++k) {
        acc = checked_add(acc, checked_mul(l[idx(i)][idx(k)], u[idx(k)][idx(j)]));
      }
      ins.a[idx(i)][idx(j)] = acc;
    }
  }
  return ins;
}

LUFactors lu_reference(const LUInstance& instance) {
  const i64 n = instance.n;
  NUSYS_REQUIRE(instance.a.size() == static_cast<std::size_t>(n),
                "lu instance shape mismatch");
  auto a = instance.a;  // Working copy reduced in place.
  LUFactors out;
  out.l.assign(static_cast<std::size_t>(n),
               std::vector<i64>(static_cast<std::size_t>(n), 0));
  out.u = out.l;
  for (i64 k = 1; k <= n; ++k) {
    out.l[idx(k)][idx(k)] = 1;
    for (i64 j = k; j <= n; ++j) out.u[idx(k)][idx(j)] = a[idx(k)][idx(j)];
    for (i64 i = k + 1; i <= n; ++i) {
      out.l[idx(i)][idx(k)] = exact_div(a[idx(i)][idx(k)], a[idx(k)][idx(k)]);
      for (i64 j = k + 1; j <= n; ++j) {
        a[idx(i)][idx(j)] = checked_sub(
            a[idx(i)][idx(j)],
            checked_mul(out.l[idx(i)][idx(k)], out.u[idx(k)][idx(j)]));
      }
    }
  }
  return out;
}

CanonicRecurrence lu_recurrence(i64 n) {
  NUSYS_REQUIRE(n >= 1, "lu recurrence needs n >= 1");
  // k in [1, n], i in [k, n], j in [k, n]: the active trailing minor.
  const auto one = AffineExpr::constant(3, 1);
  const auto top = AffineExpr::constant(3, n);
  const auto k = AffineExpr::index(3, 0);
  IndexDomain domain({"k", "i", "j"}, {{one, top}, {k, top}, {k, top}});
  DependenceSet deps;
  deps.add("a", IntVec({1, 0, 0}));
  deps.add("u", IntVec({0, 1, 0}));
  deps.add("l", IntVec({0, 0, 1}));
  return CanonicRecurrence("lu", std::move(domain), std::move(deps));
}

UniformSemantics lu_semantics(const LUInstance& ins) {
  UniformSemantics s;
  s.accumulator = std::string{"a"};
  s.compute = [](const IntVec& p, const std::map<std::string, Value>& in) {
    const i64 k = p[0];
    const i64 i = p[1];
    const i64 j = p[2];
    if (i == k) return in.at("a");  // Row points define u(k, j).
    if (j == k) return exact_div(in.at("a"), in.at("u"));  // l(i, k).
    return checked_sub(in.at("a"), checked_mul(in.at("l"), in.at("u")));
  };
  s.boundary = [&ins](const std::string& var, const IntVec& point) -> Value {
    // a enters the k = 1 plane with the original matrix; u and l boundary
    // inputs (on the i = k and j = k planes) are never read by compute.
    if (var == "a") return ins.a[idx(point[1])][idx(point[2])];
    return 0;
  };
  s.emit = [](const std::string& var, const IntVec& p,
              const std::map<std::string, Value>& in, Value out) -> Value {
    const i64 k = p[0];
    const i64 i = p[1];
    const i64 j = p[2];
    if (var == "u") {
      // Row points originate the pivot-row stream; below them it passes.
      return i == k ? out : in.at("u");
    }
    // Column points originate the multiplier stream (out == a/u there).
    return j == k ? out : in.at("l");
  };
  return s;
}

LUFactors run_lu_on_design(const LUInstance& ins, const LinearSchedule& timing,
                           const IntMat& space, const Interconnect& net) {
  return run_lu_on_design(ins, timing, space, net, engine_kind(), nullptr);
}

namespace {

LUFactors collect_factors(const LUInstance& ins,
                          const std::map<IntVec, Value>& finals) {
  LUFactors out;
  out.l.assign(static_cast<std::size_t>(ins.n),
               std::vector<i64>(static_cast<std::size_t>(ins.n), 0));
  out.u = out.l;
  std::size_t collected = 0;
  for (const auto& [point, value] : finals) {
    const i64 k = point[0];
    const i64 i = point[1];
    const i64 j = point[2];
    NUSYS_REQUIRE(i == k || j == k || k == ins.n,
                  "lu final emitted from an interior point");
    if (i == k) {
      out.u[idx(k)][idx(j)] = value;  // Includes the pivot at i = j = k.
    } else if (j == k) {
      out.l[idx(i)][idx(k)] = value;
    }
    ++collected;
  }
  for (i64 k = 1; k <= ins.n; ++k) out.l[idx(k)][idx(k)] = 1;
  NUSYS_REQUIRE(collected == static_cast<std::size_t>(ins.n * ins.n),
                "lu run did not retire one final per factor entry");
  return out;
}

}  // namespace

LUFactors run_lu_on_design(const LUInstance& ins, const LinearSchedule& timing,
                           const IntMat& space, const Interconnect& net,
                           EngineKind engine, const CancelToken* cancel) {
  const auto rec = lu_recurrence(ins.n);
  const auto run =
      engine == EngineKind::kCompiled
          ? run_uniform_compiled(rec, LUCompiledSemantics{&ins},
                                 /*accumulator_index=*/0, timing, space, net,
                                 cancel)
          : run_uniform_design(rec, lu_semantics(ins), timing, space, net,
                               engine, cancel);
  return collect_factors(ins, run.finals);
}

LUFactors run_lu_on_design(const LUInstance& ins, const LinearSchedule& timing,
                           const IntMat& space, const Interconnect& net,
                           const TileOptions& tile, EngineKind engine,
                           const CancelToken* cancel) {
  if (!tile.enabled()) {
    return run_lu_on_design(ins, timing, space, net, engine, cancel);
  }
  const auto rec = lu_recurrence(ins.n);
  const auto run = run_uniform_design_tiled(rec, lu_semantics(ins), timing,
                                            space, net, tile, engine, cancel);
  return collect_factors(ins, run.finals);
}

}  // namespace nusys
