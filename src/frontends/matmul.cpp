#include "frontends/matmul.hpp"

#include "designs/uniform_compiled.hpp"
#include "partition/tiled_uniform.hpp"
#include "support/errors.hpp"

namespace nusys {

namespace {

std::vector<std::vector<i64>> random_matrix(i64 rows, i64 cols, Rng& rng) {
  std::vector<std::vector<i64>> out;
  out.reserve(static_cast<std::size_t>(rows));
  for (i64 r = 0; r < rows; ++r) {
    out.push_back(rng.uniform_vector(static_cast<std::size_t>(cols), -9, 9));
  }
  return out;
}

/// Compiled-engine counterpart of matmul_semantics. Operand order follows
/// matmul_recurrence: c = 0 (accumulator), a = 1, b = 2.
struct MatMulCompiledSemantics {
  const MatMulInstance* ins = nullptr;

  static constexpr bool kPassThroughForward = true;  // a, b stream through.

  [[nodiscard]] Value compute(const IntVec&, OperandView in) const {
    return checked_add(in[0], checked_mul(in[1], in[2]));
  }
  void compute_block(const IntVec*, const Value* const* cols,
                     std::uint32_t base, std::uint32_t len,
                     Value* outs) const {
    simd::mul_add_checked(cols[0] + base, cols[1] + base, cols[2] + base,
                          outs, len);
  }
  [[nodiscard]] Value boundary(std::size_t var, const IntVec& point) const {
    if (var == 0) return 0;  // Empty partial sum at k = 1.
    const i64 i = point[0];
    const i64 j = point[1];
    const i64 k = point[2];
    if (var == 1) {
      return ins->a[static_cast<std::size_t>(i - 1)]
                   [static_cast<std::size_t>(k - 1)];
    }
    return ins->b[static_cast<std::size_t>(k - 1)]
                 [static_cast<std::size_t>(j - 1)];
  }
  [[nodiscard]] Value forward(std::size_t var, const IntVec&, OperandView in,
                              Value) const {
    return in[var];  // a and b pipeline through unchanged.
  }
  void observe(const IntVec&, Value) const {}
};

}  // namespace

MatMulInstance random_matmul_instance(i64 n, i64 m, i64 p, Rng& rng) {
  NUSYS_REQUIRE(n >= 1 && m >= 1 && p >= 1,
                "matmul instance needs positive dimensions");
  MatMulInstance ins;
  ins.n = n;
  ins.m = m;
  ins.p = p;
  ins.a = random_matrix(n, p, rng);
  ins.b = random_matrix(p, m, rng);
  return ins;
}

std::vector<std::vector<i64>> matmul_reference(const MatMulInstance& ins) {
  NUSYS_REQUIRE(ins.a.size() == static_cast<std::size_t>(ins.n) &&
                    ins.b.size() == static_cast<std::size_t>(ins.p),
                "matmul instance shape mismatch");
  std::vector<std::vector<i64>> c(
      static_cast<std::size_t>(ins.n),
      std::vector<i64>(static_cast<std::size_t>(ins.m), 0));
  for (i64 i = 0; i < ins.n; ++i) {
    for (i64 j = 0; j < ins.m; ++j) {
      i64 acc = 0;
      for (i64 k = 0; k < ins.p; ++k) {
        acc = checked_add(
            acc, checked_mul(ins.a[static_cast<std::size_t>(i)]
                                  [static_cast<std::size_t>(k)],
                             ins.b[static_cast<std::size_t>(k)]
                                  [static_cast<std::size_t>(j)]));
      }
      c[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = acc;
    }
  }
  return c;
}

CanonicRecurrence matmul_recurrence(i64 n, i64 m, i64 p) {
  NUSYS_REQUIRE(n >= 1 && m >= 1 && p >= 1,
                "matmul recurrence needs positive dimensions");
  DependenceSet deps;
  deps.add("c", IntVec({0, 0, 1}));
  deps.add("a", IntVec({0, 1, 0}));
  deps.add("b", IntVec({1, 0, 0}));
  return CanonicRecurrence(
      "matmul", IndexDomain::box({"i", "j", "k"}, {1, 1, 1}, {n, m, p}),
      std::move(deps));
}

UniformSemantics matmul_semantics(const MatMulInstance& ins) {
  UniformSemantics s;
  s.accumulator = std::string{"c"};
  s.compute = [](const IntVec&, const std::map<std::string, Value>& in) {
    return checked_add(in.at("c"), checked_mul(in.at("a"), in.at("b")));
  };
  s.boundary = [&ins](const std::string& var, const IntVec& point) -> Value {
    const i64 i = point[0];
    const i64 j = point[1];
    const i64 k = point[2];
    if (var == "c") return 0;  // Empty partial sum at k = 1.
    if (var == "a") {
      // The A stream enters at j = 1 carrying A[i][k].
      return ins.a[static_cast<std::size_t>(i - 1)]
                  [static_cast<std::size_t>(k - 1)];
    }
    // The B stream enters at i = 1 carrying B[k][j].
    return ins.b[static_cast<std::size_t>(k - 1)]
                [static_cast<std::size_t>(j - 1)];
  };
  return s;
}

std::vector<std::vector<i64>> run_matmul_on_design(const MatMulInstance& ins,
                                                   const LinearSchedule& timing,
                                                   const IntMat& space,
                                                   const Interconnect& net) {
  return run_matmul_on_design(ins, timing, space, net, engine_kind(), nullptr);
}

namespace {

std::vector<std::vector<i64>> collect_c(const MatMulInstance& ins,
                                        const std::map<IntVec, Value>& finals) {
  std::vector<std::vector<i64>> c(
      static_cast<std::size_t>(ins.n),
      std::vector<i64>(static_cast<std::size_t>(ins.m), 0));
  std::size_t collected = 0;
  for (const auto& [point, value] : finals) {
    NUSYS_REQUIRE(point[2] == ins.p,
                  "matmul final emitted before the last reduction step");
    c[static_cast<std::size_t>(point[0] - 1)]
     [static_cast<std::size_t>(point[1] - 1)] = value;
    ++collected;
  }
  NUSYS_REQUIRE(collected == static_cast<std::size_t>(ins.n * ins.m),
                "matmul run did not produce every C entry");
  return c;
}

}  // namespace

std::vector<std::vector<i64>> run_matmul_on_design(const MatMulInstance& ins,
                                                   const LinearSchedule& timing,
                                                   const IntMat& space,
                                                   const Interconnect& net,
                                                   EngineKind engine,
                                                   const CancelToken* cancel) {
  const auto rec = matmul_recurrence(ins.n, ins.m, ins.p);
  const auto run =
      engine == EngineKind::kCompiled
          ? run_uniform_compiled(rec, MatMulCompiledSemantics{&ins},
                                 /*accumulator_index=*/0, timing, space, net,
                                 cancel)
          : run_uniform_design(rec, matmul_semantics(ins), timing, space, net,
                               engine, cancel);
  return collect_c(ins, run.finals);
}

std::vector<std::vector<i64>> run_matmul_on_design(const MatMulInstance& ins,
                                                   const LinearSchedule& timing,
                                                   const IntMat& space,
                                                   const Interconnect& net,
                                                   const TileOptions& tile,
                                                   EngineKind engine,
                                                   const CancelToken* cancel) {
  if (!tile.enabled()) {
    return run_matmul_on_design(ins, timing, space, net, engine, cancel);
  }
  const auto rec = matmul_recurrence(ins.n, ins.m, ins.p);
  const auto run = run_uniform_design_tiled(rec, matmul_semantics(ins), timing,
                                            space, net, tile, engine, cancel);
  return collect_c(ins, run.finals);
}

}  // namespace nusys
