#include "frontends/floyd_warshall.hpp"

#include <algorithm>

#include "support/errors.hpp"

namespace nusys {

namespace {

std::size_t idx(i64 v) { return static_cast<std::size_t>(v - 1); }

i64 edge_weight(const FWInstance& ins, i64 i, i64 j) {
  NUSYS_REQUIRE(1 <= i && i < j && j <= ins.n, "fw edge lookup out of range");
  return ins.w[idx(i)][idx(j)];
}

}  // namespace

FWInstance random_dag_instance(i64 n, Rng& rng) {
  NUSYS_REQUIRE(n >= 2, "fw instance needs n >= 2");
  FWInstance ins;
  ins.n = n;
  ins.w.assign(static_cast<std::size_t>(n),
               std::vector<i64>(static_cast<std::size_t>(n), kFWUnreachable));
  for (i64 i = 1; i <= n; ++i) {
    for (i64 j = i + 1; j <= n; ++j) {
      if (rng.uniform(0, 99) < 55) ins.w[idx(i)][idx(j)] = rng.uniform(1, 20);
    }
  }
  return ins;
}

IntervalDPProblem fw_problem(const FWInstance& ins) {
  IntervalDPProblem p;
  p.name = "fw";
  p.n = ins.n;
  p.init = [&ins](i64 i) { return edge_weight(ins, i, i + 1); };
  p.combine = [&ins](i64 i, i64 /*k*/, i64 j, i64 cik, i64 ckj) {
    // Clamp at the sentinel so sums through unreachable waypoints do not
    // manufacture values above it — "no path" must stay bit-identical.
    const i64 via = std::min(checked_add(cik, ckj), kFWUnreachable);
    return std::min(edge_weight(ins, i, j), via);
  };
  return p;
}

IntervalDPProblem fw_closure_problem(const FWInstance& ins) {
  IntervalDPProblem p;
  p.name = "fw-closure";
  p.n = ins.n;
  const auto bit = [&ins](i64 i, i64 j) -> i64 {
    return edge_weight(ins, i, j) == kFWUnreachable ? 1 : 0;
  };
  p.init = [bit](i64 i) { return bit(i, i + 1); };
  p.combine = [bit](i64 i, i64 /*k*/, i64 j, i64 cik, i64 ckj) {
    // 0 = reachable, 1 = not: min is OR, max is AND under this encoding.
    return std::min(bit(i, j), std::max(cik, ckj));
  };
  return p;
}

DPTable fw_reference(const FWInstance& ins) {
  const i64 n = ins.n;
  NUSYS_REQUIRE(ins.w.size() == static_cast<std::size_t>(n),
                "fw instance shape mismatch");
  // The textbook algorithm: k outermost over every vertex, full matrix.
  std::vector<std::vector<i64>> dist(
      static_cast<std::size_t>(n),
      std::vector<i64>(static_cast<std::size_t>(n), kFWUnreachable));
  for (i64 i = 1; i <= n; ++i) {
    dist[idx(i)][idx(i)] = 0;
    for (i64 j = i + 1; j <= n; ++j) dist[idx(i)][idx(j)] = ins.w[idx(i)][idx(j)];
  }
  for (i64 k = 1; k <= n; ++k) {
    for (i64 i = 1; i <= n; ++i) {
      for (i64 j = 1; j <= n; ++j) {
        const i64 via = checked_add(dist[idx(i)][idx(k)], dist[idx(k)][idx(j)]);
        dist[idx(i)][idx(j)] = std::min(dist[idx(i)][idx(j)], via);
      }
    }
  }
  DPTable table(n);
  for (i64 i = 1; i < n; ++i) {
    for (i64 j = i + 1; j <= n; ++j) {
      table.at(i, j) = std::min(dist[idx(i)][idx(j)], kFWUnreachable);
    }
  }
  return table;
}

DPTable fw_closure_reference(const FWInstance& ins) {
  const i64 n = ins.n;
  std::vector<std::vector<bool>> reach(
      static_cast<std::size_t>(n), std::vector<bool>(static_cast<std::size_t>(n)));
  for (i64 i = 1; i <= n; ++i) {
    reach[idx(i)][idx(i)] = true;
    for (i64 j = i + 1; j <= n; ++j) {
      reach[idx(i)][idx(j)] = ins.w[idx(i)][idx(j)] != kFWUnreachable;
    }
  }
  for (i64 k = 1; k <= n; ++k) {
    for (i64 i = 1; i <= n; ++i) {
      if (!reach[idx(i)][idx(k)]) continue;
      for (i64 j = 1; j <= n; ++j) {
        if (reach[idx(k)][idx(j)]) reach[idx(i)][idx(j)] = true;
      }
    }
  }
  DPTable table(n);
  for (i64 i = 1; i < n; ++i) {
    for (i64 j = i + 1; j <= n; ++j) {
      table.at(i, j) = reach[idx(i)][idx(j)] ? 0 : 1;
    }
  }
  return table;
}

NonUniformSpec fw_spec(i64 n) {
  NUSYS_REQUIRE(n >= 3, "fw spec needs n >= 3");
  const auto i = AffineExpr::index(3, 0);
  const auto j = AffineExpr::index(3, 1);
  // Same statement structure as the Sec. IV DP spec: the reads c(i,k) and
  // c(k,j) expand, at statement (i,j) and reduction value k, to distances
  // (0, j-k) and (i-k, 0) — templates with one replaced axis each.
  IndexDomain domain({"i", "j", "k"},
                     {{AffineExpr::constant(3, 1), AffineExpr::constant(3, n)},
                      {i + 1, AffineExpr::constant(3, n)},
                      {i + 1, j - 1}});
  return NonUniformSpec("fw", std::move(domain),
                        {{"c", IntVec({0, 0}), 1}, {"c", IntVec({0, 0}), 0}});
}

}  // namespace nusys
