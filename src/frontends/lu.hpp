// LU-decomposition frontend (Gaussian elimination without pivoting),
// lowered to the canonic form over { (k,i,j) | 1<=k<=n, k<=i,j<=n }.
//
// The classic uniformization pipelines the pivot row and column instead of
// broadcasting them:
//   a(k,i,j) = a(k-1,i,j) - l(k,i,j)·u(k,i,j)      d_a = (1,0,0)
//   u(k,i,j) = u(k,i-1,j)   (row k flowing down i)  d_u = (0,1,0)
//   l(k,i,j) = l(k,i,j-1)   (col k flowing along j) d_l = (0,0,1)
// with the i = k plane *defining* u(k,j) from the reduced a, and the j = k
// plane defining l(i,k) = a/u_kk — computed streams, expressed through the
// UniformSemantics::emit hook. Final accumulator values are exactly the
// factors: U on the i = k planes, L on the j = k planes.
//
// Arithmetic stays exact: instances are constructed as A = L·U with unit
// lower-triangular integer L, so every intermediate value and every pivot
// division is an exact int64 operation (the elimination of such a product
// reproduces integer L and U at every step). lu_reference and the
// systolic run both check divisibility and must agree bit-for-bit.
#pragma once

#include <vector>

#include "designs/uniform_array.hpp"
#include "ir/recurrence.hpp"
#include "partition/tile.hpp"
#include "support/rng.hpp"

namespace nusys {

/// An n x n integer matrix admitting an exact integer LU factorization.
struct LUInstance {
  i64 n = 0;
  std::vector<std::vector<i64>> a;  ///< Row-major n x n.
};

/// The factors: l is unit lower triangular, u upper triangular (both
/// stored as full n x n row-major matrices with zeros elsewhere).
struct LUFactors {
  std::vector<std::vector<i64>> l;
  std::vector<std::vector<i64>> u;

  friend bool operator==(const LUFactors& a, const LUFactors& b) = default;
};

/// A reproducible instance built as A = L·U (L unit lower triangular with
/// entries in [-3,3]; U upper with nonzero diagonal in [1,4]).
[[nodiscard]] LUInstance random_exact_lu_instance(i64 n, Rng& rng);

/// Golden baseline: sequential elimination of `a`. Throws DomainError when
/// a pivot is zero or a division is not exact (the instance then has no
/// integer LU factorization without pivoting).
[[nodiscard]] LUFactors lu_reference(const LUInstance& instance);

/// The canonic recurrence with dependences a:(1,0,0), u:(0,1,0),
/// l:(0,0,1) over the nested domain above.
[[nodiscard]] CanonicRecurrence lu_recurrence(i64 n);

/// Cell semantics; `instance` must outlive the result.
[[nodiscard]] UniformSemantics lu_semantics(const LUInstance& ins);

/// Executes `ins` under (timing, space) on `net` and assembles L and U
/// from the final accumulator values. Uses the process-default engine
/// (see systolic/engine_select).
[[nodiscard]] LUFactors run_lu_on_design(const LUInstance& ins,
                                         const LinearSchedule& timing,
                                         const IntMat& space,
                                         const Interconnect& net);

/// Engine-pinned variant; the compiled engine polls `cancel` between
/// wavefronts.
[[nodiscard]] LUFactors run_lu_on_design(const LUInstance& ins,
                                         const LinearSchedule& timing,
                                         const IntMat& space,
                                         const Interconnect& net,
                                         EngineKind engine,
                                         const CancelToken* cancel = nullptr);

/// Tiled variant: at most tile.rows x tile.cols physical cells (see
/// partition/tiled_uniform.hpp); bit-identical to the flat run.
[[nodiscard]] LUFactors run_lu_on_design(const LUInstance& ins,
                                         const LinearSchedule& timing,
                                         const IntMat& space,
                                         const Interconnect& net,
                                         const TileOptions& tile,
                                         EngineKind engine,
                                         const CancelToken* cancel = nullptr);

}  // namespace nusys
