// Wavefront compilation of a mapped design's space-time schedule.
//
// The compiled execution backend splits running a design into two stages.
// At *compile* time the full microcode of the interpretive executors —
// which op fires at which (cell, tick), which value instance travels
// which wire on which tick, which boundary values the host injects — is
// flattened into anti-chain wavefronts: the ops of one tick, ordered
// (cell, phase, insertion) so that every intra-tick register handoff has
// its producer before its consumer. At *run* time the family executors
// walk the wavefronts as tight loops over contiguous slot arrays; no
// inboxes, no string-keyed registers, no per-cell dispatch.
//
// Because the traffic is fully static, every EngineStats field of the
// interpretive engine is computed here at compile time, bit-identically:
// busy cell-ticks (distinct (cell, tick) slots with any receive, compute
// or send activity), link transfers (total route hops), injections,
// the register-file high-water mark (an exact replay of the per-cell
// register count over receive/compute/send events), and the link-capacity
// discipline (two values on one (cell, tick, channel) throw exactly like
// SystolicEngine::deliver does at runtime).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "designs/placement_key.hpp"
#include "linalg/vec.hpp"
#include "space/interconnect.hpp"
#include "systolic/engine.hpp"

namespace nusys {

/// Names one value instance in wavefront error messages; the string is
/// only materialized when a check fails.
struct ValueLabel {
  const char* var = "";          ///< Variable / channel base name.
  const IntVec* point = nullptr; ///< Consumer coordinates (optional).
  std::size_t inst = 0;          ///< Pipelined instance index.

  [[nodiscard]] std::string describe() const;
};

/// One anti-chain of the compiled schedule: the ops
/// `order[begin..end)` all fire at `tick`. Ticks without compute
/// activity produce no wavefront (they cost nothing at run time but
/// still count toward the makespan statistics).
struct Wavefront {
  i64 tick = 0;
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
};

/// The ops of one (cell, tick) slot — a contiguous subrange of `order`.
/// Family executors use these for fold-discipline checks.
struct CellTickGroup {
  std::uint32_t cell = 0;
  i64 tick = 0;
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
};

/// A compiled schedule: execution order, wavefront index and the
/// statically computed statistics of the equivalent interpretive run.
struct WavefrontPlan {
  std::vector<std::uint32_t> order;   ///< Op ids in execution order.
  std::vector<Wavefront> fronts;      ///< Non-empty ticks, ascending.
  std::vector<CellTickGroup> groups;  ///< `order` split per (cell, tick).
  EngineStats stats;                  ///< Identical to an engine run's.
  std::size_t cell_count = 0;
  std::size_t route_hops = 0;
  i64 first_tick = 0;                 ///< Min op tick (engine run window).
  i64 last_tick = 0;                  ///< Max op tick.
};

/// Records the placements and the value traffic of one mapped design,
/// then compiles them into a WavefrontPlan. Cells must be interned
/// before transports are added (routes may only relay through cells).
class WavefrontPlanBuilder {
 public:
  /// `var_count` is the number of distinct channel base names; it sizes
  /// the per-(link, variable) capacity check exactly like the
  /// interpretive channel strings "var@link" do.
  WavefrontPlanBuilder(const Interconnect& net, std::size_t var_count);

  /// Interns a cell coordinate; returns its dense id (idempotent).
  std::uint32_t intern_cell(const IntVec& coord);
  [[nodiscard]] const IntVec& cell_coord(std::uint32_t cell) const;
  [[nodiscard]] std::size_t cell_count() const { return cells_.size(); }

  /// Places one op. Ops of one (cell, tick) execute in (phase,
  /// insertion) order — the interpretive executors' stable sort.
  std::uint32_t add_op(std::uint32_t cell, i64 tick, std::uint32_t phase);
  [[nodiscard]] std::uint32_t op_cell(std::uint32_t op) const;
  [[nodiscard]] i64 op_tick(std::uint32_t op) const;

  /// A host-injected boundary value arriving at `consumer`'s slot.
  void add_inject(std::uint32_t consumer, std::uint32_t var);

  /// A value produced by `producer` and consumed by `consumer`. Same
  /// cell: a register handoff. Different cells: routed min-hop within
  /// the tick slack, ALAP departure, relaying only through interned
  /// cells — exactly the interpretive transport schedule. The caller
  /// validates its slack policy (uniform: > 0; DP: >= 0) first.
  void add_transport(std::uint32_t producer, std::uint32_t consumer,
                     std::uint32_t var, const ValueLabel& label);

  /// Compiles everything recorded so far. The builder is consumed.
  WavefrontPlan compile() &&;

 private:
  struct RouteStep {
    std::uint32_t cell = 0;  ///< Cell the value arrives at.
    std::uint32_t link = 0;  ///< Link index it travelled.
  };

  // One value arriving at a cell on a channel (link x variable or
  // host x variable): the unit of the capacity check and of the
  // receive-phase register replay.
  struct Arrival {
    std::uint32_t cell = 0;
    i64 tick = 0;
    std::uint32_t channel = 0;
  };

  struct Departure {
    std::uint32_t cell = 0;
    i64 tick = 0;
  };

  [[nodiscard]] std::uint32_t channel_of(std::uint32_t var,
                                         std::uint32_t link) const;

  const Interconnect& net_;
  std::size_t var_count_ = 0;
  std::uint32_t host_link_ = 0;  ///< Pseudo-link index for injections.

  std::vector<IntVec> cells_;
  std::unordered_map<IntVec, std::uint32_t, IntVecHash> cell_ids_;

  // Op placements (SoA).
  std::vector<std::uint32_t> op_cell_;
  std::vector<i64> op_tick_;
  std::vector<std::uint32_t> op_phase_;
  // Register traffic per op: values cleared / stored at its compute.
  std::vector<std::uint32_t> op_consumes_;
  std::vector<std::uint32_t> op_stores_;

  std::vector<Arrival> arrivals_;
  std::vector<Departure> departures_;
  std::size_t route_hops_ = 0;
  std::size_t injections_ = 0;

  // Route cache: displacement x slack -> expanded per-hop link indices.
  std::unordered_map<detail::PlacementKey, std::vector<std::uint32_t>,
                     detail::PlacementKeyHash>
      route_cache_;
};

}  // namespace nusys
