// Engine selection for mapped-design execution.
//
// Two executors can run a synthesized design: the cycle-accurate
// interpretive SystolicEngine (src/systolic/engine.*), which models every
// inbox, register and wire at runtime, and the compiled wavefront backend
// (src/systolic/wavefront.* + src/designs/*_compiled.*), which precomputes
// the full space-time schedule into anti-chain wavefronts and executes
// them as tight loops over contiguous slot arrays. Both produce
// bit-identical results and statistics; the interpretive engine is kept
// as the differential oracle.
//
// The process default comes from NUSYS_ENGINE=interpretive|compiled
// (compiled when unset); CLI --engine flags install a process-wide
// override on top. Call sites that must pin an engine (differential
// tests, benches) use the explicit EngineKind overloads instead.
#pragma once

#include <optional>
#include <string>

namespace nusys {

/// Which executor runs a mapped design.
enum class EngineKind {
  kInterpretive,  ///< Cycle-accurate SystolicEngine (the oracle).
  kCompiled,      ///< Precompiled SoA wavefront executor.
};

/// "interpretive" / "compiled".
[[nodiscard]] const char* engine_kind_name(EngineKind kind) noexcept;

/// Parses an engine name; nullopt for anything else.
[[nodiscard]] std::optional<EngineKind> parse_engine_kind(
    const std::string& name) noexcept;

/// The engine mapped executors use when no explicit kind is passed:
/// the override if one is installed, else NUSYS_ENGINE from the
/// environment (read once), else compiled. An unparsable NUSYS_ENGINE
/// value throws DomainError at first use.
[[nodiscard]] EngineKind engine_kind();

/// Installs (or, with nullopt, removes) the process-wide engine override.
/// Used by CLI --engine flags and by tests that exercise the dispatch.
void set_engine_kind_override(std::optional<EngineKind> kind) noexcept;

}  // namespace nusys
