// Cycle-accurate systolic array engine.
//
// The substrate the synthesized designs execute on. An array is a set of
// integer-labelled cells wired by an Interconnect; execution is globally
// clocked in two phases per tick: every cell runs its program against the
// values that arrived this tick, and the values it writes to output links
// travel exactly one link, becoming visible at the neighbour on the next
// tick (or leaving the array as an Emission when no neighbour exists).
//
// The engine enforces physical discipline and reports the costs the
// paper's designs are judged by:
//   * link capacity — two values on the same (link, channel) in one tick
//     is a wiring conflict and throws;
//   * registers — cells hold state only in an explicit register file;
//     the high-water mark per cell is tracked;
//   * utilization — busy cells per tick (a cell is busy when its program
//     performed any read, write, or register update).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "linalg/vec.hpp"
#include "space/interconnect.hpp"

namespace nusys {

/// The scalar datum flowing through arrays. All designs here compute over
/// exact integers so results compare bit-for-bit with baselines.
using Value = i64;

/// A value that left the array boundary.
struct Emission {
  i64 tick = 0;       ///< Tick at which it would have arrived off-array.
  IntVec from_cell;   ///< The boundary cell that sent it.
  IntVec direction;   ///< Link direction it left through.
  std::string channel;
  Value value = 0;
};

/// A host-visible result a cell reported (e.g. a finished c(i,j)).
struct HostResult {
  i64 tick = 0;
  IntVec cell;
  std::string tag;
  Value value = 0;
};

class SystolicEngine;

/// Per-tick view a cell program operates through.
class CellContext {
 public:
  [[nodiscard]] i64 tick() const noexcept { return tick_; }
  [[nodiscard]] const IntVec& coord() const noexcept { return coord_; }

  /// The value that arrived on `channel` this tick, if any.
  [[nodiscard]] std::optional<Value> in(const std::string& channel) const;

  /// Sends a value one hop along `direction` (must be a link of the net);
  /// it arrives next tick.
  void out(const IntVec& direction, const std::string& channel, Value v);

  /// Register file access. reg() on an absent register throws.
  [[nodiscard]] bool has_reg(const std::string& name) const;
  [[nodiscard]] Value reg(const std::string& name) const;
  void set_reg(const std::string& name, Value v);
  void clear_reg(const std::string& name);

  /// Reports a host-visible result.
  void emit(const std::string& tag, Value v);

 private:
  friend class SystolicEngine;
  CellContext(SystolicEngine& engine, IntVec coord, i64 tick)
      : engine_(engine), coord_(std::move(coord)), tick_(tick) {}

  SystolicEngine& engine_;
  IntVec coord_;
  i64 tick_;
  bool busy_ = false;
};

/// The program run by every cell, every tick (systolic arrays are
/// homogeneous; per-cell behaviour differences come from coord(), tick()
/// and the register file).
using CellProgram = std::function<void(CellContext&)>;

/// One recorded event of an engine trace (see SystolicEngine::enable_trace).
struct TraceEvent {
  enum class Kind { kInjection, kSend, kEmission, kResult };
  i64 tick = 0;
  Kind kind = Kind::kSend;
  IntVec cell;        ///< The acting cell (sender / receiver of injection).
  std::string channel;
  Value value = 0;
};

/// Aggregate execution statistics.
struct EngineStats {
  i64 first_tick = 0;
  i64 last_tick = 0;
  std::size_t cell_count = 0;
  std::size_t busy_cell_ticks = 0;   ///< Σ over ticks of busy cells.
  std::size_t link_transfers = 0;    ///< Values moved across links.
  std::size_t max_registers = 0;     ///< Register-file high-water mark.
  std::size_t injections = 0;
  std::size_t emissions = 0;
  /// Maximum number of cells busy in any single tick — the live "hardware"
  /// footprint a tiled run must keep within its P×Q target.
  std::size_t peak_live_cells = 0;
  /// Tiled runs only: most values simultaneously resident in the host-side
  /// inter-tile I/O buffers (0 for flat runs).
  std::size_t buffer_high_water = 0;
  /// Tiled runs only: cross-tile values served from the I/O buffer instead
  /// of being re-fed from the host (0 for flat runs).
  std::size_t reuse_hits = 0;
  /// Compiled runs only: whether this execution's plan came from the
  /// wavefront plan cache (1/0 per run). Engine metadata, not part of the
  /// cross-engine identity the differential harnesses compare — the
  /// interpretive engine always leaves both 0.
  std::size_t plan_cache_hits = 0;
  std::size_t plan_cache_misses = 0;

  /// busy_cell_ticks / (cells * ticks).
  [[nodiscard]] double utilization() const;
};

/// A clocked array of cells.
class SystolicEngine {
 public:
  /// `cells` are the labels of the physical processors (duplicates are
  /// rejected). Links follow `net`.
  SystolicEngine(Interconnect net, std::vector<IntVec> cells);

  void set_program(CellProgram program);

  /// Presets a register before the run (e.g. loading weights).
  void preload(const IntVec& cell, const std::string& name, Value v);

  /// Schedules a boundary input: the value appears in `cell`'s inbox on
  /// `channel` at `tick`, as if a neighbour outside the array had sent it.
  void inject(i64 tick, const IntVec& cell, const std::string& channel,
              Value v);

  /// Fault injection: adds `delta` to the value arriving on `channel` at
  /// (cell, tick), if one arrives — a transient single-wire upset. Used by
  /// the failure-injection tests to show that corrupted traffic visibly
  /// changes results (the simulation is not vacuously green).
  void corrupt_arrival(i64 tick, const IntVec& cell,
                       const std::string& channel, Value delta);

  /// Fault injection: removes the value arriving on `channel` at
  /// (cell, tick), if any — a dropped transfer. Well-formed executors
  /// detect the hole (missing-operand errors).
  void drop_arrival(i64 tick, const IntVec& cell, const std::string& channel);

  /// Number of faults that actually hit a value during run().
  [[nodiscard]] std::size_t faults_applied() const noexcept {
    return faults_applied_;
  }

  /// Runs ticks first..last inclusive. May be called repeatedly to
  /// continue a run.
  void run(i64 first_tick, i64 last_tick);

  [[nodiscard]] const std::vector<Emission>& emissions() const noexcept {
    return emissions_;
  }
  [[nodiscard]] const std::vector<HostResult>& results() const noexcept {
    return results_;
  }
  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t cell_count() const noexcept {
    return cells_.size();
  }

  /// Turns on event recording (off by default; tracing large runs is
  /// memory-heavy). Keeps at most `max_events` events, then stops
  /// recording.
  void enable_trace(std::size_t max_events = 1 << 20);
  [[nodiscard]] const std::vector<TraceEvent>& trace() const noexcept {
    return trace_;
  }
  [[nodiscard]] bool has_cell(const IntVec& coord) const {
    return cell_index_.contains(coord);
  }

 private:
  friend class CellContext;

  struct CellState {
    IntVec coord;
    std::map<std::string, Value> inbox;       // Arrivals for current tick.
    std::map<std::string, Value> next_inbox;  // Arrivals for next tick.
    std::map<std::string, Value> registers;
  };

  void deliver(const IntVec& dest, const std::string& channel, Value v,
               i64 arrival_tick, const IntVec& from, const IntVec& direction);

  Interconnect net_;
  std::vector<CellState> cells_;
  std::map<IntVec, std::size_t> cell_index_;
  CellProgram program_;
  std::map<i64, std::vector<std::tuple<IntVec, std::string, Value>>>
      pending_injections_;
  struct Fault {
    IntVec cell;
    std::string channel;
    bool drop = false;
    Value delta = 0;
  };
  std::map<i64, std::vector<Fault>> pending_faults_;
  std::size_t faults_applied_ = 0;
  void record(i64 tick, TraceEvent::Kind kind, const IntVec& cell,
              const std::string& channel, Value v);

  std::vector<Emission> emissions_;
  std::vector<HostResult> results_;
  EngineStats stats_;
  bool tracing_ = false;
  std::size_t trace_capacity_ = 0;
  std::vector<TraceEvent> trace_;
};

/// Renders a trace as a per-tick timeline, e.g.
///   tick 3: inject x=5 @(1); send y=7 @(2); ...
[[nodiscard]] std::string render_trace_timeline(
    const std::vector<TraceEvent>& events);

}  // namespace nusys
