#include "systolic/engine_select.hpp"

#include <atomic>
#include <cstdlib>

#include "support/errors.hpp"

namespace nusys {

namespace {

// -1 = no override; otherwise the EngineKind value.
std::atomic<int> g_override{-1};

EngineKind engine_kind_from_env() {
  const char* env = std::getenv("NUSYS_ENGINE");
  if (env == nullptr || *env == '\0') return EngineKind::kCompiled;
  const auto parsed = parse_engine_kind(env);
  NUSYS_VALIDATE(parsed.has_value(),
                 std::string("NUSYS_ENGINE='") + env +
                     "' is not an engine; expected 'interpretive' or "
                     "'compiled'");
  return *parsed;
}

}  // namespace

const char* engine_kind_name(EngineKind kind) noexcept {
  switch (kind) {
    case EngineKind::kInterpretive: return "interpretive";
    case EngineKind::kCompiled: return "compiled";
  }
  return "?";
}

std::optional<EngineKind> parse_engine_kind(
    const std::string& name) noexcept {
  if (name == "interpretive") return EngineKind::kInterpretive;
  if (name == "compiled") return EngineKind::kCompiled;
  return std::nullopt;
}

EngineKind engine_kind() {
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<EngineKind>(forced);
  static const EngineKind from_env = engine_kind_from_env();
  return from_env;
}

void set_engine_kind_override(std::optional<EngineKind> kind) noexcept {
  g_override.store(kind ? static_cast<int>(*kind) : -1,
                   std::memory_order_relaxed);
}

}  // namespace nusys
