#include "systolic/plan_cache.hpp"

#include <atomic>
#include <utility>

#include "support/cache.hpp"
#include "support/env.hpp"

namespace nusys {

namespace {

constexpr std::size_t kDefaultCapacityBytes = 256u << 20;  // 256 MiB.

// -1 = no override; 0/1 = forced off/on.
std::atomic<int> g_enabled_override{-1};
std::atomic<int> g_audit_override{-1};

thread_local std::string g_plan_owner;  // NOLINT(runtime/string)

// Ties the plan cache to the design-cache entry lifecycle: a replaced,
// rejected or evicted design drops its derived plans. Registered at
// static initialization (a plain function pointer store, no ordering
// hazard); DesignCache operations only happen after main starts.
const bool g_listener_registered = [] {
  set_cache_replacement_listener(+[](const std::string& key) {
    wavefront_plan_cache().invalidate_design(key);
  });
  return true;
}();

}  // namespace

WavefrontPlanCache::WavefrontPlanCache(std::size_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {
  stats_.capacity_bytes = capacity_bytes_;
}

std::shared_ptr<const CachedPlan> WavefrontPlanCache::lookup(
    const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  entries_.splice(entries_.begin(), entries_, it->second);
  return it->second->plan;
}

void WavefrontPlanCache::insert(const std::string& key,
                                std::shared_ptr<const CachedPlan> plan) {
  if (plan == nullptr) return;
  const std::size_t bytes = plan->plan_bytes();
  const std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = index_.find(key); it != index_.end()) {
    erase_locked(it->second);
  }
  entries_.push_front(
      Entry{key, std::move(plan), bytes, PlanOwnerScope::current()});
  index_.emplace(key, entries_.begin());
  if (!entries_.front().owner.empty()) {
    owners_.emplace(entries_.front().owner, key);
  }
  bytes_ += bytes;
  ++stats_.insertions;
  evict_over_budget_locked();
}

void WavefrontPlanCache::invalidate_design(const std::string& design_key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [begin, end] = owners_.equal_range(design_key);
  for (auto it = begin; it != end; ++it) {
    // erase_locked would also touch owners_; drop the index entry
    // directly here and erase the whole owner bucket afterwards.
    const auto slot = index_.find(it->second);
    if (slot == index_.end()) continue;
    bytes_ -= slot->second->bytes;
    entries_.erase(slot->second);
    index_.erase(slot);
    ++stats_.invalidations;
  }
  owners_.erase(design_key);
}

void WavefrontPlanCache::set_capacity_bytes(std::size_t capacity_bytes) {
  const std::lock_guard<std::mutex> lock(mutex_);
  capacity_bytes_ = capacity_bytes;
  stats_.capacity_bytes = capacity_bytes;
  evict_over_budget_locked();
}

PlanCacheStats WavefrontPlanCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  PlanCacheStats snapshot = stats_;
  snapshot.entries = entries_.size();
  snapshot.bytes = bytes_;
  snapshot.capacity_bytes = capacity_bytes_;
  return snapshot;
}

void WavefrontPlanCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  index_.clear();
  owners_.clear();
  bytes_ = 0;
}

void WavefrontPlanCache::erase_locked(std::list<Entry>::iterator it) {
  if (!it->owner.empty()) {
    const auto [begin, end] = owners_.equal_range(it->owner);
    for (auto o = begin; o != end; ++o) {
      if (o->second == it->key) {
        owners_.erase(o);
        break;
      }
    }
  }
  bytes_ -= it->bytes;
  index_.erase(it->key);
  entries_.erase(it);
}

void WavefrontPlanCache::evict_over_budget_locked() {
  while (bytes_ > capacity_bytes_ && !entries_.empty()) {
    erase_locked(std::prev(entries_.end()));
    ++stats_.evictions;
  }
}

void WavefrontPlanCache::note_audit(bool certified) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (certified) {
    ++stats_.audit_passes;
  } else {
    ++stats_.audit_failures;
  }
}

WavefrontPlanCache& wavefront_plan_cache() {
  static WavefrontPlanCache cache(
      env_bytes("NUSYS_PLAN_CACHE_BYTES", kDefaultCapacityBytes));
  return cache;
}

bool plan_cache_enabled() {
  // Referencing the registration constant keeps it alive under aggressive
  // dead-global elimination.
  (void)g_listener_registered;
  const int forced = g_enabled_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  static const bool disabled = env_flag("NUSYS_DISABLE_PLAN_CACHE");
  return !disabled;
}

void set_plan_cache_enabled_override(std::optional<bool> forced) noexcept {
  g_enabled_override.store(forced ? (*forced ? 1 : 0) : -1,
                           std::memory_order_relaxed);
}

bool plan_audit_enabled() {
  const int forced = g_audit_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  static const bool from_env = env_flag("NUSYS_AUDIT_PLANS");
  return from_env;
}

void set_plan_audit_override(std::optional<bool> forced) noexcept {
  g_audit_override.store(forced ? (*forced ? 1 : 0) : -1,
                         std::memory_order_relaxed);
}

PlanOwnerScope::PlanOwnerScope(std::string design_cache_key)
    : previous_(std::exchange(g_plan_owner, std::move(design_cache_key))) {}

PlanOwnerScope::~PlanOwnerScope() { g_plan_owner = std::move(previous_); }

const std::string& PlanOwnerScope::current() noexcept {
  return g_plan_owner;
}

JsonValue plan_cache_stats_json() {
  const PlanCacheStats s = wavefront_plan_cache().stats();
  JsonValue doc;
  doc.set("hits", static_cast<i64>(s.hits));
  doc.set("misses", static_cast<i64>(s.misses));
  doc.set("insertions", static_cast<i64>(s.insertions));
  doc.set("evictions", static_cast<i64>(s.evictions));
  doc.set("invalidations", static_cast<i64>(s.invalidations));
  doc.set("audit_passes", static_cast<i64>(s.audit_passes));
  doc.set("audit_failures", static_cast<i64>(s.audit_failures));
  doc.set("entries", static_cast<i64>(s.entries));
  doc.set("bytes", static_cast<i64>(s.bytes));
  doc.set("capacity_bytes", static_cast<i64>(s.capacity_bytes));
  doc.set("hit_rate", s.hit_rate());
  return doc;
}

}  // namespace nusys
