#include "systolic/engine.hpp"

#include <algorithm>
#include <sstream>

#include "support/errors.hpp"

namespace nusys {

double EngineStats::utilization() const {
  const auto ticks = static_cast<double>(last_tick - first_tick + 1);
  if (cell_count == 0 || ticks <= 0) return 0.0;
  return static_cast<double>(busy_cell_ticks) /
         (static_cast<double>(cell_count) * ticks);
}

std::optional<Value> CellContext::in(const std::string& channel) const {
  auto& state = engine_.cells_[engine_.cell_index_.at(coord_)];
  const auto it = state.inbox.find(channel);
  if (it == state.inbox.end()) return std::nullopt;
  const_cast<CellContext*>(this)->busy_ = true;
  return it->second;
}

void CellContext::out(const IntVec& direction, const std::string& channel,
                      Value v) {
  NUSYS_REQUIRE(!engine_.net_.link_name(direction).empty(),
                "CellContext::out: direction is not a link of the "
                "interconnect");
  busy_ = true;
  engine_.record(tick_, TraceEvent::Kind::kSend, coord_, channel, v);
  engine_.deliver(coord_ + direction, channel, v, tick_ + 1, coord_,
                  direction);
}

bool CellContext::has_reg(const std::string& name) const {
  const auto& state = engine_.cells_[engine_.cell_index_.at(coord_)];
  return state.registers.contains(name);
}

Value CellContext::reg(const std::string& name) const {
  const auto& state = engine_.cells_[engine_.cell_index_.at(coord_)];
  const auto it = state.registers.find(name);
  NUSYS_REQUIRE(it != state.registers.end(),
                "CellContext::reg: register '" + name + "' not set");
  return it->second;
}

void CellContext::set_reg(const std::string& name, Value v) {
  busy_ = true;
  auto& state = engine_.cells_[engine_.cell_index_.at(coord_)];
  state.registers[name] = v;
  engine_.stats_.max_registers =
      std::max(engine_.stats_.max_registers, state.registers.size());
}

void CellContext::clear_reg(const std::string& name) {
  auto& state = engine_.cells_[engine_.cell_index_.at(coord_)];
  state.registers.erase(name);
}

void CellContext::emit(const std::string& tag, Value v) {
  busy_ = true;
  engine_.results_.push_back({tick_, coord_, tag, v});
  engine_.record(tick_, TraceEvent::Kind::kResult, coord_, tag, v);
}

SystolicEngine::SystolicEngine(Interconnect net, std::vector<IntVec> cells)
    : net_(std::move(net)) {
  NUSYS_REQUIRE(!cells.empty(), "SystolicEngine: at least one cell");
  std::sort(cells.begin(), cells.end());
  cells_.reserve(cells.size());
  for (auto& coord : cells) {
    NUSYS_REQUIRE(coord.dim() == net_.label_dim(),
                  "SystolicEngine: cell label dimension mismatch");
    NUSYS_REQUIRE(cell_index_.emplace(coord, cells_.size()).second,
                  "SystolicEngine: duplicate cell label");
    cells_.push_back(CellState{std::move(coord), {}, {}, {}});
  }
  stats_.cell_count = cells_.size();
}

void SystolicEngine::set_program(CellProgram program) {
  program_ = std::move(program);
}

void SystolicEngine::preload(const IntVec& cell, const std::string& name,
                             Value v) {
  const auto it = cell_index_.find(cell);
  NUSYS_REQUIRE(it != cell_index_.end(),
                "SystolicEngine::preload: unknown cell " + cell.to_string());
  cells_[it->second].registers[name] = v;
  stats_.max_registers =
      std::max(stats_.max_registers, cells_[it->second].registers.size());
}

void SystolicEngine::inject(i64 tick, const IntVec& cell,
                            const std::string& channel, Value v) {
  NUSYS_REQUIRE(cell_index_.contains(cell),
                "SystolicEngine::inject: unknown cell " + cell.to_string());
  pending_injections_[tick].emplace_back(cell, channel, v);
  ++stats_.injections;
}

void SystolicEngine::corrupt_arrival(i64 tick, const IntVec& cell,
                                     const std::string& channel,
                                     Value delta) {
  NUSYS_REQUIRE(cell_index_.contains(cell),
                "corrupt_arrival: unknown cell " + cell.to_string());
  pending_faults_[tick].push_back({cell, channel, false, delta});
}

void SystolicEngine::drop_arrival(i64 tick, const IntVec& cell,
                                  const std::string& channel) {
  NUSYS_REQUIRE(cell_index_.contains(cell),
                "drop_arrival: unknown cell " + cell.to_string());
  pending_faults_[tick].push_back({cell, channel, true, 0});
}

void SystolicEngine::enable_trace(std::size_t max_events) {
  tracing_ = true;
  trace_capacity_ = max_events;
  trace_.reserve(std::min<std::size_t>(max_events, 4096));
}

void SystolicEngine::record(i64 tick, TraceEvent::Kind kind,
                            const IntVec& cell, const std::string& channel,
                            Value v) {
  if (!tracing_ || trace_.size() >= trace_capacity_) return;
  trace_.push_back({tick, kind, cell, channel, v});
}

void SystolicEngine::deliver(const IntVec& dest, const std::string& channel,
                             Value v, i64 /*arrival_tick*/,
                             const IntVec& from, const IntVec& direction) {
  const auto it = cell_index_.find(dest);
  if (it == cell_index_.end()) {
    // Boundary: the value leaves the array.
    emissions_.push_back(
        {stats_.last_tick + 1, from, direction, channel, v});
    ++stats_.emissions;
    record(stats_.last_tick + 1, TraceEvent::Kind::kEmission, from, channel,
           v);
    return;
  }
  auto& inbox = cells_[it->second].next_inbox;
  NUSYS_REQUIRE(inbox.emplace(channel, v).second,
                "SystolicEngine: link conflict — two values arriving on "
                "channel '" + channel + "' at cell " + dest.to_string() +
                    " in the same tick");
  ++stats_.link_transfers;
}

void SystolicEngine::run(i64 first_tick, i64 last_tick) {
  NUSYS_REQUIRE(first_tick <= last_tick,
                "SystolicEngine::run: empty tick range");
  NUSYS_REQUIRE(static_cast<bool>(program_),
                "SystolicEngine::run: no program set");
  stats_.first_tick = std::min(stats_.first_tick, first_tick);

  for (i64 tick = first_tick; tick <= last_tick; ++tick) {
    stats_.last_tick = tick;
    // Phase 0: arrivals become visible (sent values + injections).
    for (auto& cell : cells_) {
      cell.inbox = std::move(cell.next_inbox);
      cell.next_inbox.clear();
    }
    const auto inj = pending_injections_.find(tick);
    if (inj != pending_injections_.end()) {
      for (const auto& [cell, channel, value] : inj->second) {
        auto& inbox = cells_[cell_index_.at(cell)].inbox;
        NUSYS_REQUIRE(inbox.emplace(channel, value).second,
                      "SystolicEngine: injection collides with a link value "
                      "on channel '" + channel + "'");
        record(tick, TraceEvent::Kind::kInjection, cell, channel, value);
      }
      pending_injections_.erase(inj);
    }
    // Phase 0b: scheduled faults hit the merged arrivals.
    if (const auto faults = pending_faults_.find(tick);
        faults != pending_faults_.end()) {
      for (const auto& f : faults->second) {
        auto& inbox = cells_[cell_index_.at(f.cell)].inbox;
        const auto it = inbox.find(f.channel);
        if (it == inbox.end()) continue;  // Nothing arrived; fault misses.
        ++faults_applied_;
        if (f.drop) {
          inbox.erase(it);
        } else {
          it->second = checked_add(it->second, f.delta);
        }
      }
      pending_faults_.erase(faults);
    }
    // Phase 1: every cell computes; outputs land in next_inbox.
    std::size_t live_this_tick = 0;
    for (auto& cell : cells_) {
      CellContext ctx(*this, cell.coord, tick);
      program_(ctx);
      if (ctx.busy_) {
        ++stats_.busy_cell_ticks;
        ++live_this_tick;
      }
      cell.inbox.clear();
    }
    stats_.peak_live_cells = std::max(stats_.peak_live_cells, live_this_tick);
  }
}

std::string render_trace_timeline(const std::vector<TraceEvent>& events) {
  std::ostringstream os;
  i64 current_tick = 0;
  bool first_line = true;
  static const auto kind_name = [](TraceEvent::Kind kind) {
    switch (kind) {
      case TraceEvent::Kind::kInjection: return "inject";
      case TraceEvent::Kind::kSend: return "send";
      case TraceEvent::Kind::kEmission: return "emit";
      case TraceEvent::Kind::kResult: return "result";
    }
    return "?";
  };
  for (const auto& e : events) {
    if (first_line || e.tick != current_tick) {
      if (!first_line) os << '\n';
      os << "tick " << e.tick << ':';
      current_tick = e.tick;
      first_line = false;
    }
    os << ' ' << kind_name(e.kind) << ' ' << e.channel << '=' << e.value
       << " @" << e.cell << ';';
  }
  if (!first_line) os << '\n';
  return os.str();
}

}  // namespace nusys
