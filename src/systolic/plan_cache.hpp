// Process-wide cache of compiled wavefront plans.
//
// PR 7's compiled backend rebuilds the full WavefrontPlan — point
// enumeration, cell interning, transport routing, front sorting — on
// every run_*_compiled call, even when the batch driver or the service
// executes the same cached design over and over. This cache stores the
// finished, instance-independent artifact (execution-ordered points,
// scatter targets, wavefronts, boundary-inject lists, precomputed
// EngineStats) keyed by the *structural content* of the mapping:
// domain + dependences + (T, S, Δ) for uniform plans, plus the tile
// shape for tiled plans and the (schedules, spaces, blocks, n, period)
// tuple for DP plans. Content-derived keys make stale entries
// self-invalidating — a replaced design can never alias an old plan —
// and the DesignCache replacement listener (support/cache.hpp) drops a
// design's plans eagerly when its cache entry is replaced, rejected or
// evicted, so the byte budget is never spent on dead designs.
//
// Plans are immutable and shared (shared_ptr<const>); executions allocate
// only their value-slot arrays. The LRU is bounded by bytes, not entries,
// because plan sizes span four orders of magnitude across the corpus.
// NUSYS_DISABLE_PLAN_CACHE=1 (or the programmatic override) bypasses the
// cache entirely — the ablation the differential CI job reruns under.
#pragma once

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "support/json.hpp"

namespace nusys {

/// Base of every cacheable compiled plan; `plan_bytes` drives the LRU
/// byte accounting and is computed from element counts only, so it is
/// identical across platforms.
class CachedPlan {
 public:
  virtual ~CachedPlan() = default;
  [[nodiscard]] virtual std::size_t plan_bytes() const noexcept = 0;
};

/// Lifetime counters plus the current residency of the plan cache.
struct PlanCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t insertions = 0;
  std::size_t evictions = 0;      ///< Dropped by LRU byte pressure.
  std::size_t invalidations = 0;  ///< Dropped by design-cache lifecycle.
  std::size_t audit_passes = 0;   ///< Admission audits that certified.
  std::size_t audit_failures = 0; ///< Admission audits that refused a plan.
  std::size_t entries = 0;        ///< Resident plans right now.
  std::size_t bytes = 0;          ///< Resident bytes right now.
  std::size_t capacity_bytes = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    const std::size_t lookups = hits + misses;
    if (lookups == 0) return 0.0;
    return static_cast<double>(hits) / static_cast<double>(lookups);
  }

  friend bool operator==(const PlanCacheStats& a,
                         const PlanCacheStats& b) = default;
};

/// Byte-bounded LRU of compiled plans, keyed by structural design
/// content. Thread-safe; the service workers share the process-global
/// instance (wavefront_plan_cache()).
class WavefrontPlanCache {
 public:
  explicit WavefrontPlanCache(std::size_t capacity_bytes);

  /// The plan under `key`, refreshing recency; nullptr on a miss. Counts
  /// exactly one hit or miss.
  [[nodiscard]] std::shared_ptr<const CachedPlan> lookup(
      const std::string& key);

  /// Inserts (or replaces) `key`, associating it with the currently
  /// scoped design-cache key (PlanOwnerScope), then evicts LRU entries
  /// until the byte budget holds again.
  void insert(const std::string& key, std::shared_ptr<const CachedPlan> plan);

  /// Drops every plan associated with `design_key` (counted as
  /// invalidations, not evictions). Wired to the DesignCache replacement
  /// listener at static-initialization time.
  void invalidate_design(const std::string& design_key);

  /// Changes the byte budget, evicting immediately if now over it.
  void set_capacity_bytes(std::size_t capacity_bytes);

  /// Records the verdict of one admission audit (NUSYS_AUDIT_PLANS).
  /// The audit itself lives in analysis/plan_audit.hpp; the acquire
  /// paths call it before insert and report the outcome here, so the
  /// counters sit next to the hit/miss/eviction ledger they gate.
  void note_audit(bool certified);

  [[nodiscard]] PlanCacheStats stats() const;
  void clear();

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const CachedPlan> plan;
    std::size_t bytes = 0;
    std::string owner;  ///< Design-cache key, possibly empty.
  };

  void erase_locked(std::list<Entry>::iterator it);
  void evict_over_budget_locked();

  mutable std::mutex mutex_;
  std::size_t capacity_bytes_ = 0;
  std::size_t bytes_ = 0;
  /// Front = most recently used.
  std::list<Entry> entries_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  /// Design-cache key -> plan keys currently derived from it.
  std::unordered_multimap<std::string, std::string> owners_;
  PlanCacheStats stats_;
};

/// The process-global plan cache every compiled entry point shares.
/// Default budget 256 MiB; NUSYS_PLAN_CACHE_BYTES overrides it at first
/// use.
[[nodiscard]] WavefrontPlanCache& wavefront_plan_cache();

/// False when NUSYS_DISABLE_PLAN_CACHE=1 (or a test override disables
/// it): every compiled run then rebuilds its plan from scratch — the
/// cold-path ablation the differential CI job reruns under. Throws
/// DomainError on a malformed NUSYS_DISABLE_PLAN_CACHE value.
[[nodiscard]] bool plan_cache_enabled();

/// Test/bench hook: force the plan cache on or off regardless of the
/// environment; nullopt restores the environment's choice.
void set_plan_cache_enabled_override(std::optional<bool> forced) noexcept;

/// True when NUSYS_AUDIT_PLANS=1 (or a test override turns it on):
/// every plan built on the cache-insert path is statically audited
/// (analysis/plan_audit.hpp) and refused — DomainError — if any
/// obligation is violated. Throws DomainError on a malformed value.
[[nodiscard]] bool plan_audit_enabled();

/// Test/bench hook: force admission auditing on or off regardless of
/// the environment; nullopt restores the environment's choice.
void set_plan_audit_override(std::optional<bool> forced) noexcept;

/// Scopes plan-cache inserts to a design-cache key: plans built while a
/// scope is active are invalidated when that design-cache entry is
/// replaced, rejected or evicted. Thread-local and re-entrant (the
/// previous owner is restored on destruction); executions outside any
/// scope insert unowned plans, which only LRU pressure or structural-key
/// divergence retire.
class PlanOwnerScope {
 public:
  explicit PlanOwnerScope(std::string design_cache_key);
  ~PlanOwnerScope();
  PlanOwnerScope(const PlanOwnerScope&) = delete;
  PlanOwnerScope& operator=(const PlanOwnerScope&) = delete;

  /// The innermost active scope's design-cache key; empty without one.
  [[nodiscard]] static const std::string& current() noexcept;

 private:
  std::string previous_;
};

/// The global cache's counters as a JSON object — mirrors the
/// design-cache block in service stats and the batch report.
[[nodiscard]] JsonValue plan_cache_stats_json();

}  // namespace nusys
