#include "systolic/wavefront.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

#include "space/routing.hpp"
#include "support/checked.hpp"
#include "support/errors.hpp"

namespace nusys {

std::string ValueLabel::describe() const {
  std::ostringstream os;
  if (inst != 0) os << inst << '#';
  os << var;
  if (point != nullptr) os << ':' << *point;
  return os.str();
}

WavefrontPlanBuilder::WavefrontPlanBuilder(const Interconnect& net,
                                           std::size_t var_count)
    : net_(net),
      var_count_(var_count),
      host_link_(static_cast<std::uint32_t>(net.link_count())) {
  NUSYS_REQUIRE(var_count_ > 0,
                "WavefrontPlanBuilder: at least one variable");
}

std::uint32_t WavefrontPlanBuilder::intern_cell(const IntVec& coord) {
  const auto [it, inserted] =
      cell_ids_.emplace(coord, static_cast<std::uint32_t>(cells_.size()));
  if (inserted) {
    NUSYS_REQUIRE(coord.dim() == net_.label_dim(),
                  "WavefrontPlanBuilder: cell label dimension mismatch");
    cells_.push_back(coord);
  }
  return it->second;
}

const IntVec& WavefrontPlanBuilder::cell_coord(std::uint32_t cell) const {
  return cells_[cell];
}

std::uint32_t WavefrontPlanBuilder::add_op(std::uint32_t cell, i64 tick,
                                           std::uint32_t phase) {
  const auto id = static_cast<std::uint32_t>(op_cell_.size());
  op_cell_.push_back(cell);
  op_tick_.push_back(tick);
  op_phase_.push_back(phase);
  op_consumes_.push_back(0);
  op_stores_.push_back(0);
  return id;
}

std::uint32_t WavefrontPlanBuilder::op_cell(std::uint32_t op) const {
  return op_cell_[op];
}

i64 WavefrontPlanBuilder::op_tick(std::uint32_t op) const {
  return op_tick_[op];
}

std::uint32_t WavefrontPlanBuilder::channel_of(std::uint32_t var,
                                               std::uint32_t link) const {
  return var * (host_link_ + 1) + link;
}

void WavefrontPlanBuilder::add_inject(std::uint32_t consumer,
                                      std::uint32_t var) {
  arrivals_.push_back(
      {op_cell_[consumer], op_tick_[consumer], channel_of(var, host_link_)});
  ++injections_;
  ++op_consumes_[consumer];
}

void WavefrontPlanBuilder::add_transport(std::uint32_t producer,
                                         std::uint32_t consumer,
                                         std::uint32_t var,
                                         const ValueLabel& label) {
  ++op_stores_[producer];
  ++op_consumes_[consumer];
  const IntVec& src = cells_[op_cell_[producer]];
  const IntVec& dst = cells_[op_cell_[consumer]];
  const IntVec disp = dst - src;
  if (disp.is_zero()) return;  // Register handoff inside one cell.
  const i64 slack = checked_sub(op_tick_[consumer], op_tick_[producer]);

  const detail::PlacementKey key{disp, slack};
  auto cached = route_cache_.find(key);
  if (cached == route_cache_.end()) {
    const auto route = route_displacement(net_, disp, slack);
    NUSYS_VALIDATE(route.has_value(),
                   "dependence '" + label.describe() +
                       "' is not routable from cell " + src.to_string() +
                       " to " + dst.to_string() + " within " +
                       std::to_string(slack) + " tick(s)");
    std::vector<std::uint32_t> links;
    links.reserve(static_cast<std::size_t>(route->total_hops));
    for (std::size_t l = 0; l < net_.link_count(); ++l) {
      for (i64 c = 0; c < route->hops_per_link[l]; ++c) {
        links.push_back(static_cast<std::uint32_t>(l));
      }
    }
    cached = route_cache_.emplace(key, std::move(links)).first;
  }
  const std::vector<std::uint32_t>& links = cached->second;
  route_hops_ += links.size();

  // ALAP: depart so the value arrives exactly at the consumption tick.
  i64 t = op_tick_[consumer] - static_cast<i64>(links.size());
  std::uint32_t at = op_cell_[producer];
  IntVec coord = src;
  for (const std::uint32_t link : links) {
    departures_.push_back({at, t});
    coord += net_.link(link).direction;
    ++t;
    const auto it = cell_ids_.find(coord);
    NUSYS_VALIDATE(it != cell_ids_.end(),
                   "route of '" + label.describe() + "' passes through " +
                       coord.to_string() +
                       ", which is not a cell of the array");
    at = it->second;
    arrivals_.push_back({at, t, channel_of(var, link)});
  }
}

WavefrontPlan WavefrontPlanBuilder::compile() && {
  const std::size_t n = op_cell_.size();
  NUSYS_REQUIRE(n > 0, "WavefrontPlanBuilder: no ops placed");

  WavefrontPlan plan;
  plan.cell_count = cells_.size();
  plan.route_hops = route_hops_;

  // Execution order: (tick, cell, phase, insertion). Intra-tick
  // cross-cell traffic needs >= 1 hop so cells of one wavefront are
  // independent; within one (cell, tick) slot the phase ordering is the
  // interpretive executors' modules-before-combines stable sort.
  plan.order.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) plan.order[i] = i;
  std::sort(plan.order.begin(), plan.order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return std::tuple(op_tick_[a], op_cell_[a], op_phase_[a], a) <
                     std::tuple(op_tick_[b], op_cell_[b], op_phase_[b], b);
            });

  for (std::uint32_t x = 0; x < n; ++x) {
    const std::uint32_t op = plan.order[x];
    if (plan.fronts.empty() || plan.fronts.back().tick != op_tick_[op]) {
      plan.fronts.push_back({op_tick_[op], x, x});
    }
    plan.fronts.back().end = x + 1;
    if (plan.groups.empty() || plan.groups.back().tick != op_tick_[op] ||
        plan.groups.back().cell != op_cell_[op]) {
      plan.groups.push_back({op_cell_[op], op_tick_[op], x, x});
    }
    plan.groups.back().end = x + 1;
  }
  plan.first_tick = plan.fronts.front().tick;
  plan.last_tick = plan.fronts.back().tick;

  // Link capacity: two values arriving on one (cell, tick, channel) is a
  // wiring conflict — what SystolicEngine::deliver / inject catch at
  // runtime, caught here at compile time instead.
  std::sort(arrivals_.begin(), arrivals_.end(),
            [](const Arrival& a, const Arrival& b) {
              return std::tuple(a.cell, a.tick, a.channel) <
                     std::tuple(b.cell, b.tick, b.channel);
            });
  for (std::size_t i = 1; i < arrivals_.size(); ++i) {
    const Arrival& a = arrivals_[i - 1];
    const Arrival& b = arrivals_[i];
    NUSYS_REQUIRE(std::tuple(a.cell, a.tick, a.channel) !=
                      std::tuple(b.cell, b.tick, b.channel),
                  "wavefront compile: link conflict — two values arriving "
                  "on one channel at cell " +
                      cells_[a.cell].to_string() + " in tick " +
                      std::to_string(a.tick));
  }
  std::sort(departures_.begin(), departures_.end(),
            [](const Departure& a, const Departure& b) {
              return std::tuple(a.cell, a.tick) < std::tuple(b.cell, b.tick);
            });

  // Busy cell-ticks: distinct (cell, tick) slots with any receive,
  // compute or send activity (the engine's CellContext busy flag).
  std::vector<std::pair<std::uint32_t, i64>> active;
  active.reserve(plan.groups.size() + arrivals_.size() + departures_.size());
  for (const auto& g : plan.groups) active.emplace_back(g.cell, g.tick);
  for (const auto& a : arrivals_) active.emplace_back(a.cell, a.tick);
  for (const auto& d : departures_) active.emplace_back(d.cell, d.tick);
  std::sort(active.begin(), active.end());
  active.erase(std::unique(active.begin(), active.end()), active.end());

  // Peak live cells: the largest count of distinct busy cells in one tick
  // (the engine's per-tick busy tally).
  std::vector<i64> busy_ticks;
  busy_ticks.reserve(active.size());
  for (const auto& [cell, tick] : active) busy_ticks.push_back(tick);
  std::sort(busy_ticks.begin(), busy_ticks.end());
  std::size_t peak_live = 0;
  for (std::size_t i = 0; i < busy_ticks.size();) {
    std::size_t j = i;
    while (j < busy_ticks.size() && busy_ticks[j] == busy_ticks[i]) ++j;
    peak_live = std::max(peak_live, j - i);
    i = j;
  }

  // Register high-water mark: replay each cell's register count over its
  // (tick, receive -> compute -> send) event stream. The engine samples
  // after every set_reg: after the receive fills and after every op's
  // output stores (clears precede stores within one op).
  struct RegEvent {
    std::uint32_t cell = 0;
    i64 tick = 0;
    std::uint32_t stage = 0;  ///< 0 receive, 1 compute, 2 send.
    std::uint32_t seq = 0;    ///< Op order within the compute stage.
    std::uint32_t takes = 0;
    std::uint32_t puts = 0;
  };
  std::vector<RegEvent> events;
  events.reserve(arrivals_.size() / 2 + n + departures_.size() / 2);
  for (std::size_t i = 0; i < arrivals_.size();) {
    std::size_t j = i;
    while (j < arrivals_.size() && arrivals_[j].cell == arrivals_[i].cell &&
           arrivals_[j].tick == arrivals_[i].tick) {
      ++j;
    }
    events.push_back({arrivals_[i].cell, arrivals_[i].tick, 0, 0, 0,
                      static_cast<std::uint32_t>(j - i)});
    i = j;
  }
  for (std::uint32_t x = 0; x < n; ++x) {
    const std::uint32_t op = plan.order[x];
    events.push_back({op_cell_[op], op_tick_[op], 1, x, op_consumes_[op],
                      op_stores_[op]});
  }
  for (std::size_t i = 0; i < departures_.size();) {
    std::size_t j = i;
    while (j < departures_.size() &&
           departures_[j].cell == departures_[i].cell &&
           departures_[j].tick == departures_[i].tick) {
      ++j;
    }
    events.push_back({departures_[i].cell, departures_[i].tick, 2, 0,
                      static_cast<std::uint32_t>(j - i), 0});
    i = j;
  }
  std::sort(events.begin(), events.end(),
            [](const RegEvent& a, const RegEvent& b) {
              return std::tuple(a.cell, a.tick, a.stage, a.seq) <
                     std::tuple(b.cell, b.tick, b.stage, b.seq);
            });
  std::size_t max_registers = 0;
  i64 held = 0;
  std::uint32_t current_cell = events.empty() ? 0 : events.front().cell;
  for (const RegEvent& e : events) {
    if (e.cell != current_cell) {
      current_cell = e.cell;
      held = 0;
    }
    held -= e.takes;
    held += e.puts;
    NUSYS_REQUIRE(held >= 0,
                  "wavefront compile: a value is consumed before any "
                  "producer stores it");
    if (e.stage != 2) {
      max_registers = std::max(max_registers, static_cast<std::size_t>(held));
    }
  }

  plan.stats.first_tick = std::min<i64>(0, plan.first_tick);
  plan.stats.last_tick = plan.last_tick;
  plan.stats.cell_count = cells_.size();
  plan.stats.busy_cell_ticks = active.size();
  plan.stats.link_transfers = route_hops_;
  plan.stats.max_registers = max_registers;
  plan.stats.injections = injections_;
  plan.stats.emissions = 0;
  plan.stats.peak_live_cells = peak_live;
  return plan;
}

}  // namespace nusys
