// Per-module timing search under global constraints (Sec. V-A).
//
// For each module m we seek a linear schedule t_m with t_m(d) > 0 on the
// module's local dependences, and for each global dependence statement the
// consumer must fire after (or, when allow_equal_time, no earlier than) the
// producer at every guard point. The paper derives λ, μ, σ for dynamic
// programming by hand; this search recovers them automatically by
// enumerating per-module coefficient cubes with backtracking, ranking
// complete assignments by the *global* makespan (latest tick anywhere minus
// earliest tick anywhere).
#pragma once

#include <vector>

#include "modules/module_system.hpp"
#include "schedule/timing.hpp"

namespace nusys {

/// One complete schedule assignment (one LinearSchedule per module).
struct ModuleScheduleAssignment {
  std::vector<LinearSchedule> schedules;
  i64 makespan = 0;  ///< Global span across all module domains.
};

/// Options for the module-schedule search.
struct ModuleScheduleOptions {
  i64 coeff_bound = 2;
  /// Keep at most this many optima (0 = all).
  std::size_t max_results = 0;
};

/// Search outcome.
struct ModuleScheduleResult {
  std::vector<ModuleScheduleAssignment> optima;  ///< Canonically ordered.
  std::size_t assignments_checked = 0;

  [[nodiscard]] bool found() const noexcept { return !optima.empty(); }
  [[nodiscard]] const ModuleScheduleAssignment& best() const;
};

/// True when `schedules` (one per module) satisfies every local and global
/// timing constraint of `sys`. This is the checker used both inside the
/// search and by tests that verify the paper's hand-derived λ, μ, σ.
[[nodiscard]] bool schedules_satisfy(
    const ModuleSystem& sys, const std::vector<LinearSchedule>& schedules);

/// Global makespan of an assignment over all module domains.
[[nodiscard]] i64 global_makespan(const ModuleSystem& sys,
                                  const std::vector<LinearSchedule>& schedules);

/// Exhaustive backtracking search for makespan-optimal assignments.
[[nodiscard]] ModuleScheduleResult find_module_schedules(
    const ModuleSystem& sys, const ModuleScheduleOptions& options = {});

}  // namespace nusys
