// Per-module timing search under global constraints (Sec. V-A).
//
// For each module m we seek a linear schedule t_m with t_m(d) > 0 on the
// module's local dependences, and for each global dependence statement the
// consumer must fire after (or, when allow_equal_time, no earlier than) the
// producer at every guard point. The paper derives λ, μ, σ for dynamic
// programming by hand; this search recovers them automatically by
// enumerating per-module coefficient cubes with backtracking, ranking
// complete assignments by the *global* makespan (latest tick anywhere minus
// earliest tick anywhere).
//
// With `parallelism.threads > 1` the backtracking fans out over the first
// module's candidate schedules: each worker owns a contiguous chunk of
// module 0's candidate list and explores it with purely local state; the
// per-worker optima are merged in worker order, which is exactly the
// sequential exploration order — optima, makespan, `examined` and
// `feasible_count` are identical for every worker count.
#pragma once

#include <vector>

#include "modules/module_system.hpp"
#include "schedule/timing.hpp"
#include "search/kernels.hpp"
#include "support/cancel.hpp"
#include "support/parallel.hpp"
#include "support/telemetry.hpp"

namespace nusys {

/// One complete schedule assignment (one LinearSchedule per module).
struct ModuleScheduleAssignment {
  std::vector<LinearSchedule> schedules;
  i64 makespan = 0;  ///< Global span across all module domains.
};

/// Options for the module-schedule search.
struct ModuleScheduleOptions {
  i64 coeff_bound = 2;
  /// Keep at most this many optima (0 = all).
  std::size_t max_results = 0;
  /// Worker threads over module 0's candidates (0 = hardware concurrency,
  /// 1 = the exact legacy sequential path).
  SearchParallelism parallelism;
  /// Cooperative cancellation: polled every kCancelPollStride backtracking
  /// steps; a fired token aborts the search with CancelledError. nullptr
  /// (the default) is the exact legacy path; a token that never fires
  /// changes no result.
  const CancelToken* cancel = nullptr;
  /// Evaluate spans and global-dep guards over convex-hull vertices instead
  /// of every enumerated point/pair (exact for linear schedules; see
  /// search/kernels.hpp). Both settings return bit-identical results; off
  /// is the full-point ablation path.
  bool hull_kernels = hull_kernels_default();
};

/// Search outcome.
struct ModuleScheduleResult {
  std::vector<ModuleScheduleAssignment> optima;  ///< Canonically ordered.
  /// Complete assignments reached by the backtracking. Advisory: the
  /// incumbent trajectory (and hence pruning) depends on the chunking.
  std::size_t assignments_checked = 0;
  /// Coefficient vectors enumerated across all per-module candidate cubes
  /// (worker-invariant).
  std::size_t examined = 0;
  /// Locally feasible per-module candidates kept (worker-invariant).
  std::size_t feasible_count = 0;
  /// Backtracking branches cut by the incumbent makespan bound. Advisory:
  /// the incumbent is shared across workers through a relaxed atomic, so
  /// this count depends on chunking *and* thread timing (optima and
  /// makespan never do).
  std::size_t pruned = 0;
  /// Workers the backtracking actually used.
  std::size_t workers_used = 1;
  /// Search wall time.
  double wall_seconds = 0.0;

  [[nodiscard]] bool found() const noexcept { return !optima.empty(); }
  [[nodiscard]] const ModuleScheduleAssignment& best() const;

  /// This search as one telemetry stage named `stage`.
  [[nodiscard]] StageTelemetry telemetry(std::string stage) const;
};

/// True when `schedules` (one per module) satisfies every local and global
/// timing constraint of `sys`. This is the checker used both inside the
/// search and by tests that verify the paper's hand-derived λ, μ, σ.
[[nodiscard]] bool schedules_satisfy(
    const ModuleSystem& sys, const std::vector<LinearSchedule>& schedules);

/// Global makespan of an assignment over all module domains.
[[nodiscard]] i64 global_makespan(const ModuleSystem& sys,
                                  const std::vector<LinearSchedule>& schedules);

/// Exhaustive backtracking search for makespan-optimal assignments.
[[nodiscard]] ModuleScheduleResult find_module_schedules(
    const ModuleSystem& sys, const ModuleScheduleOptions& options = {});

}  // namespace nusys
