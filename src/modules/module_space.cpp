#include "modules/module_space.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <numeric>
#include <set>
#include <unordered_map>

#include "schedule/search.hpp"
#include "space/routing.hpp"

namespace nusys {

const ModuleSpaceAssignment& ModuleSpaceResult::best() const {
  if (optima.empty()) {
    throw SearchFailure(
        "no feasible per-module space assignment; per Sec. II-B, retry with "
        "a different timing function or interconnection network");
  }
  return optima.front();
}

StageTelemetry ModuleSpaceResult::telemetry(std::string stage) const {
  StageTelemetry t;
  t.stage = std::move(stage);
  t.examined = examined;
  t.feasible = feasible_count;
  t.pruned = pruned;
  t.workers = workers_used;
  t.wall_seconds = wall_seconds;
  return t;
}

namespace {

/// Memoized "is this displacement routable within this slack" oracle.
class RoutabilityCache {
 public:
  explicit RoutabilityCache(const Interconnect& net) : net_(net) {}

  [[nodiscard]] bool routable(const IntVec& displacement, i64 slack) {
    if (slack < 0) return false;
    if (displacement.is_zero()) return true;
    if (displacement.l1_norm() > slack) return false;  // Cheap necessary test.
    const auto key = std::make_pair(displacement, slack);
    const auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    const bool ok = route_displacement(net_, displacement, slack).has_value();
    cache_.emplace(key, ok);
    return ok;
  }

  /// The inner-loop variant over a raw displacement row. The caller has
  /// already handled the zero / negative-slack / L1 prechecks. Small
  /// displacements and slacks hash as one packed integer — no IntVec is
  /// materialized unless the route must actually be solved (or the values
  /// fall outside the packable range, where the exact map takes over).
  [[nodiscard]] bool routable_flat(const i64* d, std::size_t rows,
                                   i64 slack) {
    constexpr i64 kPack = i64{1} << 20;
    bool packable = rows <= 2 && slack < kPack;
    for (std::size_t r = 0; packable && r < rows; ++r) {
      packable = d[r] > -kPack && d[r] < kPack;
    }
    if (!packable) {
      return routable(IntVec(std::vector<i64>(d, d + rows)), slack);
    }
    std::uint64_t key = static_cast<std::uint64_t>(slack);
    for (std::size_t r = 0; r < rows; ++r) {
      key = (key << 21) | static_cast<std::uint64_t>(d[r] + kPack);
    }
    const auto it = flat_.find(key);
    if (it != flat_.end()) return it->second;
    const bool ok =
        route_displacement(net_, IntVec(std::vector<i64>(d, d + rows)), slack)
            .has_value();
    flat_.emplace(key, ok);
    return ok;
  }

 private:
  const Interconnect& net_;
  std::map<std::pair<IntVec, i64>, bool> cache_;
  std::unordered_map<std::uint64_t, bool> flat_;
};

/// Pre-enumerated guard data of one global dep.
struct GuardPairs {
  const GlobalDep* dep = nullptr;
  std::vector<std::pair<IntVec, IntVec>> pairs;  // (consumer, producer) pts.
  std::vector<i64> slacks;                       // t_c(p) - t_p(q).
  i64 min_slack = std::numeric_limits<i64>::max();
};

bool check_global(const GuardPairs& g, const IntMat& s_consumer,
                  const IntMat& s_producer, RoutabilityCache& cache) {
  // A negative slack is unroutable for any displacement, so the statement
  // can never hold: fail before touching a single matrix product.
  if (g.min_slack < 0) return false;
  for (std::size_t i = 0; i < g.pairs.size(); ++i) {
    const IntVec disp = s_consumer * g.pairs[i].first -
                        s_producer * g.pairs[i].second;
    if (!cache.routable(disp, g.slacks[i])) return false;
  }
  return true;
}

i64 abs_entries(const std::vector<IntMat>& spaces) {
  i64 acc = 0;
  for (const auto& s : spaces) {
    for (std::size_t r = 0; r < s.rows(); ++r) {
      for (std::size_t c = 0; c < s.cols(); ++c) {
        acc += s(r, c) < 0 ? -s(r, c) : s(r, c);
      }
    }
  }
  return acc;
}

bool spaces_lex_before(const std::vector<IntMat>& a,
                       const std::vector<IntMat>& b) {
  for (std::size_t m = 0; m < a.size(); ++m) {
    for (std::size_t r = 0; r < a[m].rows(); ++r) {
      for (std::size_t c = 0; c < a[m].cols(); ++c) {
        if (a[m](r, c) != b[m](r, c)) return a[m](r, c) < b[m](r, c);
      }
    }
  }
  return false;
}

std::vector<GuardPairs> enumerate_guards(
    const ModuleSystem& sys, const std::vector<LinearSchedule>& schedules) {
  std::vector<GuardPairs> out;
  out.reserve(sys.globals().size());
  for (const auto& g : sys.globals()) {
    GuardPairs gp;
    gp.dep = &g;
    g.guard.for_each([&](const IntVec& p) {
      const IntVec q = g.producer_point.apply(p);
      gp.pairs.emplace_back(p, q);
      gp.slacks.push_back(checked_sub(schedules[g.consumer].at(p),
                                      schedules[g.producer].at(q)));
      gp.min_slack = std::min(gp.min_slack, gp.slacks.back());
    });
    out.push_back(std::move(gp));
  }
  return out;
}

/// Per-module (point, tick, fold key) list entry.
struct PointInfo {
  IntVec point;
  i64 tick = 0;
  IntVec key;
};

/// Interns IntVecs as dense ids so the backtracking loop can use flat
/// arrays instead of IntVec-keyed trees. Built single-threaded during
/// setup, read-only afterwards.
class VecDict {
 public:
  std::uint32_t intern(const IntVec& v) {
    const auto it = map_.find(v);
    if (it != map_.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(map_.size());
    map_.emplace(v, id);
    return id;
  }
  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }

 private:
  std::unordered_map<IntVec, std::uint32_t, IntVecHash> map_;
};

/// Interns label vectors given as raw coordinate rows. Small labels (up to
/// three rows, coordinates within ±2^20) pack into one u64 key and hash as
/// integers; anything larger falls back to an exact IntVec-keyed table.
/// The two tables share one id counter, and packability is a function of
/// the value alone, so equal labels always land in the same table and
/// distinct labels always get distinct ids.
class LabelDict {
 public:
  std::uint32_t intern(const i64* v, std::size_t rows) {
    constexpr i64 kPack = i64{1} << 20;
    bool packable = rows <= 3;
    std::uint64_t key = 1;  // Leading sentinel: row counts cannot alias.
    for (std::size_t r = 0; packable && r < rows; ++r) {
      packable = v[r] > -kPack && v[r] < kPack;
      key = (key << 21) | static_cast<std::uint64_t>(v[r] + kPack);
    }
    if (packable) {
      const auto it = packed_.find(key);
      if (it != packed_.end()) return it->second;
      packed_.emplace(key, next_);
      return next_++;
    }
    const IntVec vec(std::vector<i64>(v, v + rows));
    const auto it = exact_.find(vec);
    if (it != exact_.end()) return it->second;
    exact_.emplace(vec, next_);
    return next_++;
  }
  [[nodiscard]] std::size_t size() const noexcept { return next_; }

 private:
  std::uint32_t next_ = 0;
  std::unordered_map<std::uint64_t, std::uint32_t> packed_;
  std::unordered_map<IntVec, std::uint32_t, IntVecHash> exact_;
};

/// Interns u64 composite keys (slots: label id << 32 | tick id) as dense
/// ids.
class KeyDict {
 public:
  std::uint32_t intern(std::uint64_t key) {
    const auto it = map_.find(key);
    if (it != map_.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(map_.size());
    map_.emplace(key, id);
    return id;
  }
  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }

 private:
  std::unordered_map<std::uint64_t, std::uint32_t> map_;
};

/// A locally feasible candidate matrix. All label/slot identities are
/// pre-interned dense ids: `label_ids` is the sorted-distinct label list
/// (for incremental cell counting), `slot_ids` holds one (cell, tick)
/// slot id per module point, aligned with the module's PointInfo order
/// (for cross-module conflict and folding checks).
struct Candidate {
  IntMat s;
  std::vector<std::uint32_t> label_ids;
  std::vector<std::uint32_t> slot_ids;
};

/// One global dep prepared for the inner loop: per-candidate projections
/// of its guard points through the candidate matrices of both endpoint
/// modules, stored row-major over the pairs ([r * pairs + i]). The
/// displacement of pair i under (s_c, s_p) is then a per-row subtraction
/// of two flat lanes — the matrix products all happen once, up front.
struct GuardEval {
  const GuardPairs* gp = nullptr;
  std::size_t rows = 0;
  std::vector<std::vector<i64>> cons;  ///< [consumer candidate][r*np + i].
  std::vector<std::vector<i64>> prod;  ///< [producer candidate][r*np + i].
};

/// Projects `column` of each pair (first or second element) through every
/// candidate matrix: out[c][r*np + i] = s_c(r,·)·pt_i.
std::vector<std::vector<i64>> project_guard_side(
    const std::vector<Candidate>& cands,
    const std::vector<std::pair<IntVec, IntVec>>& pairs, bool consumer_side,
    std::size_t rows) {
  const std::size_t np = pairs.size();
  std::vector<std::vector<i64>> out(cands.size());
  for (std::size_t c = 0; c < cands.size(); ++c) {
    const IntMat& s = cands[c].s;
    auto& lanes = out[c];
    lanes.assign(rows * np, 0);
    for (std::size_t i = 0; i < np; ++i) {
      const IntVec& pt = consumer_side ? pairs[i].first : pairs[i].second;
      for (std::size_t r = 0; r < rows; ++r) {
        i64 acc = 0;
        for (std::size_t a = 0; a < pt.dim(); ++a) {
          acc = checked_add(acc, checked_mul(s(r, a), pt[a]));
        }
        lanes[r * np + i] = acc;
      }
    }
  }
  return out;
}

/// check_global over the precomputed projections: same decisions as the
/// legacy IntVec path (the prechecks mirror RoutabilityCache::routable),
/// with zero allocations on the happy path.
bool check_global_flat(const GuardEval& ge, std::size_t ci, std::size_t pi,
                       RoutabilityCache& cache) {
  const GuardPairs& g = *ge.gp;
  // A negative slack is unroutable for any displacement, so the statement
  // can never hold: fail before touching a single lane.
  if (g.min_slack < 0) return false;
  const std::size_t np = g.pairs.size();
  const i64* cons = ge.cons[ci].data();
  const i64* prod = ge.prod[pi].data();
  std::array<i64, 8> d{};
  NUSYS_REQUIRE(ge.rows <= d.size(), "check_global: label dim too large");
  for (std::size_t i = 0; i < np; ++i) {
    i64 l1 = 0;
    for (std::size_t r = 0; r < ge.rows; ++r) {
      const i64 v = checked_sub(cons[r * np + i], prod[r * np + i]);
      d[r] = v;
      l1 = checked_add(l1, v < 0 ? -v : v);
    }
    if (l1 == 0) continue;                  // Zero displacement: in place.
    if (l1 > g.slacks[i]) return false;     // Cheap necessary test.
    if (!cache.routable_flat(d.data(), ge.rows, g.slacks[i])) return false;
  }
  return true;
}

/// One worker's backtracking over a chunk of module 0's candidate
/// matrices. All mutable search state — chosen stack, label/slot
/// registries, incumbent, routability cache — is private to the worker.
struct SpaceWorker {
  const ModuleSystem* sys = nullptr;
  const std::vector<std::vector<Candidate>>* candidates = nullptr;
  const std::vector<std::vector<const GuardEval*>>* guards_at = nullptr;
  /// Per module, per point: interned fold-key id (PointInfo order).
  const std::vector<std::vector<std::uint32_t>>* key_ids = nullptr;
  const Interconnect* net = nullptr;
  std::atomic<std::size_t>* shared_best = nullptr;
  std::size_t label_count = 0;  ///< Dense label id universe size.
  std::size_t slot_count = 0;   ///< Dense slot id universe size.
  bool has_fold = false;

  std::vector<std::uint32_t> chosen;  ///< Candidate index per module.
  /// Dense registries: refcount per label id, and (occupant fold-key id,
  /// refcount) per slot id. A count of zero means free; claims and
  /// rollbacks are O(1) array writes, never tree rebalances.
  std::vector<std::uint32_t> label_refs;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> slot_refs;
  std::size_t distinct_labels = 0;
  std::size_t incumbent = std::numeric_limits<std::size_t>::max();
  std::vector<ModuleSpaceAssignment> optima;
  std::size_t checked = 0;
  std::size_t pruned = 0;

  void run(std::size_t begin, std::size_t end) {
    RoutabilityCache cache(*net);
    chosen.assign(sys->module_count(), 0);
    label_refs.assign(label_count, 0);
    slot_refs.assign(slot_count, {0, 0});
    descend(0, begin, end, cache);
  }

 private:
  void descend(std::size_t m, std::size_t begin, std::size_t end,
               RoutabilityCache& cache) {
    const std::size_t module_count = sys->module_count();
    const auto& level = (*candidates)[m];
    for (std::size_t idx = begin; idx < end; ++idx) {
      const Candidate& cand = level[idx];
      chosen[m] = static_cast<std::uint32_t>(idx);
      bool feasible = true;
      for (const auto* ge : (*guards_at)[m]) {
        if (!check_global_flat(*ge, chosen[ge->gp->dep->consumer],
                               chosen[ge->gp->dep->producer], cache)) {
          feasible = false;
          break;
        }
      }
      if (feasible) {
        // Claim this module's slots; sharing across modules requires equal
        // fold keys (and a fold key to be defined at all).
        const auto& keys = (*key_ids)[m];
        std::size_t claimed = 0;
        for (std::size_t k = 0; k < cand.slot_ids.size(); ++k) {
          auto& ref = slot_refs[cand.slot_ids[k]];
          if (ref.second == 0) {
            ref = {keys[k], 1};
          } else if (has_fold && ref.first == keys[k]) {
            ++ref.second;
          } else {
            feasible = false;
            break;
          }
          ++claimed;
        }
        if (feasible) {
          for (const auto id : cand.label_ids) {
            if (label_refs[id]++ == 0) ++distinct_labels;
          }
          // The label union only grows down a branch, so a partial count
          // beyond the incumbent (the better of this worker's and the
          // cross-worker bound) can never complete into an optimum: prune.
          const std::size_t bound = std::min(
              incumbent, shared_best->load(std::memory_order_relaxed));
          if (distinct_labels <= bound) {
            if (m + 1 == module_count) {
              complete();
            } else {
              descend(m + 1, 0, (*candidates)[m + 1].size(), cache);
            }
          } else {
            ++pruned;
          }
          for (const auto id : cand.label_ids) {
            if (--label_refs[id] == 0) --distinct_labels;
          }
        }
        for (std::size_t k = 0; k < claimed; ++k) {
          --slot_refs[cand.slot_ids[k]].second;
        }
      }
    }
  }

  void complete() {
    ++checked;
    const std::size_t cells = distinct_labels;
    if (cells > incumbent) return;
    ModuleSpaceAssignment a;
    a.spaces.reserve(chosen.size());
    for (std::size_t m = 0; m < chosen.size(); ++m) {
      a.spaces.push_back((*candidates)[m][chosen[m]].s);
    }
    a.cell_count = cells;
    if (cells < incumbent) {
      incumbent = cells;
      optima.clear();
      // Publish the improved bound (relaxed: a pruning hint only; the
      // recorded optima are validated locally and again at the merge).
      std::size_t cur = shared_best->load(std::memory_order_relaxed);
      while (cells < cur &&
             !shared_best->compare_exchange_weak(cur, cells,
                                                 std::memory_order_relaxed)) {
      }
    }
    optima.push_back(std::move(a));
  }
};

}  // namespace

bool spaces_satisfy(const ModuleSystem& sys,
                    const std::vector<LinearSchedule>& schedules,
                    const std::vector<IntMat>& spaces,
                    const Interconnect& net) {
  NUSYS_REQUIRE(schedules.size() == sys.module_count() &&
                    spaces.size() == sys.module_count(),
                "spaces_satisfy: one schedule and one space per module");
  RoutabilityCache cache(net);
  // Cross-module slot registry: (cell, tick) -> fold key of the occupant.
  std::map<std::pair<IntVec, i64>, IntVec> slots;
  for (std::size_t m = 0; m < sys.module_count(); ++m) {
    NUSYS_REQUIRE(spaces[m].rows() == net.label_dim() &&
                      spaces[m].cols() == sys.dim(),
                  "spaces_satisfy: space matrix shape mismatch");
    // Local routability (eq. (3) per module).
    for (const auto& dep : sys.module(m).local_deps) {
      if (!cache.routable(spaces[m] * dep.vector,
                          schedules[m].slack(dep.vector))) {
        return false;
      }
    }
    // Per-module no-conflict condition (2), plus the cross-module folding
    // rule: a slot may be shared between modules only when the fold keys
    // agree (and the system defines a fold key at all).
    std::set<std::pair<IntVec, i64>> own;
    bool conflict = false;
    sys.module(m).domain.for_each([&](const IntVec& p) {
      if (conflict) return;
      auto slot = std::make_pair(spaces[m] * p, schedules[m].at(p));
      if (!own.insert(slot).second) {
        conflict = true;
        return;
      }
      const IntVec key =
          sys.fold_key() ? sys.fold_key()->apply(p) : p;
      const auto [it, inserted] = slots.emplace(slot, key);
      if (!inserted && (!sys.fold_key() || it->second != key)) {
        conflict = true;
      }
    });
    if (conflict) return false;
  }
  // Global routability.
  for (const auto& gp : enumerate_guards(sys, schedules)) {
    if (!check_global(gp, spaces[gp.dep->consumer], spaces[gp.dep->producer],
                      cache)) {
      return false;
    }
  }
  return true;
}

std::size_t count_cells(const ModuleSystem& sys,
                        const std::vector<IntMat>& spaces) {
  NUSYS_REQUIRE(spaces.size() == sys.module_count(),
                "count_cells: one space per module");
  std::set<IntVec> labels;
  for (std::size_t m = 0; m < sys.module_count(); ++m) {
    sys.module(m).domain.for_each(
        [&](const IntVec& p) { labels.insert(spaces[m] * p); });
  }
  return labels.size();
}

ModuleSpaceResult find_module_spaces(const ModuleSystem& sys,
                                     const std::vector<LinearSchedule>& schedules,
                                     const Interconnect& net,
                                     const ModuleSpaceOptions& options) {
  sys.validate();
  NUSYS_REQUIRE(schedules.size() == sys.module_count(),
                "find_module_spaces: one schedule per module");
  const WallTimer timer;
  const std::size_t n = sys.dim();
  const std::size_t module_count = sys.module_count();
  NUSYS_REQUIRE(module_count >= 1, "find_module_spaces: empty module system");
  const std::size_t label_dim = net.label_dim();
  RoutabilityCache cache(net);

  ModuleSpaceResult result;

  // Per-module (point, tick, fold key) lists.
  std::vector<std::vector<PointInfo>> module_points(module_count);
  for (std::size_t m = 0; m < module_count; ++m) {
    sys.module(m).domain.for_each([&](const IntVec& p) {
      module_points[m].push_back(
          {p, schedules[m].at(p), sys.fold_key() ? sys.fold_key()->apply(p) : p});
    });
  }

  // Shared intern dictionaries: one id universe per identity kind, spanning
  // all modules so cross-module distinctness is an integer comparison.
  NUSYS_REQUIRE(label_dim <= 8, "find_module_spaces: label dim too large");
  LabelDict label_dict;  // cell label vectors.
  KeyDict slot_dict;     // (label id << 32 | tick id) slots.
  VecDict key_dict;      // fold-key vectors.
  std::unordered_map<i64, std::uint32_t> tick_dict;
  std::vector<std::vector<std::uint32_t>> tick_ids(module_count);
  std::vector<std::vector<std::uint32_t>> key_ids(module_count);
  for (std::size_t m = 0; m < module_count; ++m) {
    tick_ids[m].reserve(module_points[m].size());
    key_ids[m].reserve(module_points[m].size());
    for (const auto& info : module_points[m]) {
      const auto it = tick_dict.find(info.tick);
      if (it != tick_dict.end()) {
        tick_ids[m].push_back(it->second);
      } else {
        const auto id = static_cast<std::uint32_t>(tick_dict.size());
        tick_dict.emplace(info.tick, id);
        tick_ids[m].push_back(id);
      }
      key_ids[m].push_back(key_dict.intern(info.key));
    }
  }

  // Candidate matrices per module: must route local deps within slack and
  // be conflict-free on the module's own domain.
  std::vector<std::vector<Candidate>> candidates(module_count);
  {
    const auto row_candidates = coefficient_cube(n, options.coeff_bound);
    std::vector<IntVec> rows(label_dim, IntVec(n));
    for (std::size_t m = 0; m < module_count; ++m) {
      const auto& deps = sys.module(m).local_deps;
      const std::size_t np = module_points[m].size();
      std::vector<std::uint64_t> slot_keys(np);     // Point order.
      std::vector<std::uint64_t> sorted_keys(np);   // Conflict scratch.
      auto build = [&](auto&& self, std::size_t row) -> void {
        if (row == label_dim) {
          ++result.examined;
          const IntMat s = IntMat::from_rows(rows);
          std::array<i64, 8> d{};
          for (const auto& dep : deps) {
            const i64 slack = schedules[m].slack(dep.vector);
            if (slack < 0) return;
            i64 l1 = 0;
            for (std::size_t r = 0; r < label_dim; ++r) {
              i64 acc = 0;
              for (std::size_t a = 0; a < n; ++a) {
                acc = checked_add(acc, checked_mul(s(r, a), dep.vector[a]));
              }
              d[r] = acc;
              l1 = checked_add(l1, acc < 0 ? -acc : acc);
            }
            if (l1 == 0) continue;  // Zero displacement: in place.
            if (l1 > slack) return;
            if (!cache.routable_flat(d.data(), label_dim, slack)) return;
          }
          // One image pass feeds both checks: each (cell, tick) slot packs
          // into a u64 of interned ids, so sorting the keys exposes slot
          // conflicts (condition (2) per module) as adjacent duplicates and
          // the distinct high halves are the module's label set.
          for (std::size_t i = 0; i < np; ++i) {
            const IntVec& pt = module_points[m][i].point;
            std::array<i64, 8> img{};
            for (std::size_t r = 0; r < label_dim; ++r) {
              i64 acc = 0;
              for (std::size_t a = 0; a < n; ++a) {
                acc = checked_add(acc, checked_mul(s(r, a), pt[a]));
              }
              img[r] = acc;
            }
            const std::uint32_t lid =
                label_dict.intern(img.data(), label_dim);
            slot_keys[i] =
                (static_cast<std::uint64_t>(lid) << 32) | tick_ids[m][i];
          }
          sorted_keys = slot_keys;
          std::sort(sorted_keys.begin(), sorted_keys.end());
          if (std::adjacent_find(sorted_keys.begin(), sorted_keys.end()) !=
              sorted_keys.end()) {
            return;
          }
          Candidate cand;
          cand.s = s;
          for (std::size_t i = 0; i < np; ++i) {
            const auto lid =
                static_cast<std::uint32_t>(sorted_keys[i] >> 32);
            if (cand.label_ids.empty() || cand.label_ids.back() != lid) {
              cand.label_ids.push_back(lid);
            }
          }
          cand.slot_ids.reserve(np);
          for (std::size_t i = 0; i < np; ++i) {
            cand.slot_ids.push_back(slot_dict.intern(slot_keys[i]));
          }
          candidates[m].push_back(std::move(cand));
          return;
        }
        for (const auto& r : row_candidates) {
          rows[row] = r;
          self(self, row + 1);
        }
      };
      build(build, 0);
      result.feasible_count += candidates[m].size();
      if (candidates[m].empty()) {
        result.wall_seconds = timer.seconds();
        return result;
      }
    }
  }

  // Globals indexed by the later endpoint module. With the kernel fast
  // paths enabled, each statement checks its tightest slacks first — the
  // likeliest routability failures — which cannot change any result: the
  // check is a pure conjunction over the pairs.
  auto guards = enumerate_guards(sys, schedules);
  if (options.hull_kernels) {
    for (auto& gp : guards) {
      std::vector<std::size_t> order(gp.pairs.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return gp.slacks[a] < gp.slacks[b];
                       });
      std::vector<std::pair<IntVec, IntVec>> pairs;
      std::vector<i64> slacks;
      pairs.reserve(order.size());
      slacks.reserve(order.size());
      for (const std::size_t i : order) {
        pairs.push_back(std::move(gp.pairs[i]));
        slacks.push_back(gp.slacks[i]);
      }
      gp.pairs = std::move(pairs);
      gp.slacks = std::move(slacks);
    }
  }
  // Project every guard point through every candidate matrix once, up
  // front: the inner loop then never multiplies a matrix again — each
  // displacement is a flat-lane subtraction.
  std::vector<GuardEval> guard_evals;
  guard_evals.reserve(guards.size());
  for (const auto& gp : guards) {
    GuardEval ge;
    ge.gp = &gp;
    ge.rows = label_dim;
    ge.cons = project_guard_side(candidates[gp.dep->consumer], gp.pairs,
                                 /*consumer_side=*/true, label_dim);
    ge.prod = project_guard_side(candidates[gp.dep->producer], gp.pairs,
                                 /*consumer_side=*/false, label_dim);
    guard_evals.push_back(std::move(ge));
  }
  std::vector<std::vector<const GuardEval*>> guards_at(module_count);
  for (const auto& ge : guard_evals) {
    guards_at[std::max(ge.gp->dep->consumer, ge.gp->dep->producer)]
        .push_back(&ge);
  }

  // Fan out over module 0's candidate matrices; every worker owns its
  // search state outright (including a private routability cache).
  const std::size_t workers =
      options.parallelism.workers_for(candidates[0].size());
  std::atomic<std::size_t> shared_best{
      std::numeric_limits<std::size_t>::max()};
  std::vector<SpaceWorker> parts(workers);
  run_chunked(candidates[0].size(), workers,
              [&](std::size_t worker, std::size_t begin, std::size_t end) {
                SpaceWorker& part = parts[worker];
                part.sys = &sys;
                part.candidates = &candidates;
                part.guards_at = &guards_at;
                part.key_ids = &key_ids;
                part.net = &net;
                part.shared_best = &shared_best;
                part.label_count = label_dict.size();
                part.slot_count = slot_dict.size();
                part.has_fold = sys.fold_key().has_value();
                part.run(begin, end);
              });

  // Merge in worker order (= sequential exploration order), then rank.
  result.workers_used = workers;
  std::size_t incumbent = std::numeric_limits<std::size_t>::max();
  for (const auto& part : parts) {
    result.assignments_checked += part.checked;
    result.pruned += part.pruned;
    incumbent = std::min(incumbent, part.incumbent);
  }
  for (auto& part : parts) {
    if (part.incumbent != incumbent) continue;
    result.optima.insert(result.optima.end(),
                         std::make_move_iterator(part.optima.begin()),
                         std::make_move_iterator(part.optima.end()));
  }

  std::stable_sort(result.optima.begin(), result.optima.end(),
                   [](const ModuleSpaceAssignment& a,
                      const ModuleSpaceAssignment& b) {
                     if (a.cell_count != b.cell_count) {
                       return a.cell_count < b.cell_count;
                     }
                     const i64 ea = abs_entries(a.spaces);
                     const i64 eb = abs_entries(b.spaces);
                     if (ea != eb) return ea < eb;
                     return spaces_lex_before(a.spaces, b.spaces);
                   });
  if (options.max_results > 0 && result.optima.size() > options.max_results) {
    result.optima.resize(options.max_results);
  }
  result.wall_seconds = timer.seconds();
  return result;
}

}  // namespace nusys
