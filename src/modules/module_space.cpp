#include "modules/module_space.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

#include "schedule/search.hpp"
#include "space/routing.hpp"

namespace nusys {

const ModuleSpaceAssignment& ModuleSpaceResult::best() const {
  if (optima.empty()) {
    throw SearchFailure(
        "no feasible per-module space assignment; per Sec. II-B, retry with "
        "a different timing function or interconnection network");
  }
  return optima.front();
}

StageTelemetry ModuleSpaceResult::telemetry(std::string stage) const {
  StageTelemetry t;
  t.stage = std::move(stage);
  t.examined = examined;
  t.feasible = feasible_count;
  t.workers = workers_used;
  t.wall_seconds = wall_seconds;
  return t;
}

namespace {

/// Memoized "is this displacement routable within this slack" oracle.
class RoutabilityCache {
 public:
  explicit RoutabilityCache(const Interconnect& net) : net_(net) {}

  [[nodiscard]] bool routable(const IntVec& displacement, i64 slack) {
    if (slack < 0) return false;
    if (displacement.is_zero()) return true;
    if (displacement.l1_norm() > slack) return false;  // Cheap necessary test.
    const auto key = std::make_pair(displacement, slack);
    const auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    const bool ok = route_displacement(net_, displacement, slack).has_value();
    cache_.emplace(key, ok);
    return ok;
  }

 private:
  const Interconnect& net_;
  std::map<std::pair<IntVec, i64>, bool> cache_;
};

/// Pre-enumerated guard data of one global dep.
struct GuardPairs {
  const GlobalDep* dep = nullptr;
  std::vector<std::pair<IntVec, IntVec>> pairs;  // (consumer, producer) pts.
  std::vector<i64> slacks;                       // t_c(p) - t_p(q).
};

bool check_global(const GuardPairs& g, const IntMat& s_consumer,
                  const IntMat& s_producer, RoutabilityCache& cache) {
  for (std::size_t i = 0; i < g.pairs.size(); ++i) {
    const IntVec disp = s_consumer * g.pairs[i].first -
                        s_producer * g.pairs[i].second;
    if (!cache.routable(disp, g.slacks[i])) return false;
  }
  return true;
}

i64 abs_entries(const std::vector<IntMat>& spaces) {
  i64 acc = 0;
  for (const auto& s : spaces) {
    for (std::size_t r = 0; r < s.rows(); ++r) {
      for (std::size_t c = 0; c < s.cols(); ++c) {
        acc += s(r, c) < 0 ? -s(r, c) : s(r, c);
      }
    }
  }
  return acc;
}

bool spaces_lex_before(const std::vector<IntMat>& a,
                       const std::vector<IntMat>& b) {
  for (std::size_t m = 0; m < a.size(); ++m) {
    for (std::size_t r = 0; r < a[m].rows(); ++r) {
      for (std::size_t c = 0; c < a[m].cols(); ++c) {
        if (a[m](r, c) != b[m](r, c)) return a[m](r, c) < b[m](r, c);
      }
    }
  }
  return false;
}

std::vector<GuardPairs> enumerate_guards(
    const ModuleSystem& sys, const std::vector<LinearSchedule>& schedules) {
  std::vector<GuardPairs> out;
  out.reserve(sys.globals().size());
  for (const auto& g : sys.globals()) {
    GuardPairs gp;
    gp.dep = &g;
    g.guard.for_each([&](const IntVec& p) {
      const IntVec q = g.producer_point.apply(p);
      gp.pairs.emplace_back(p, q);
      gp.slacks.push_back(checked_sub(schedules[g.consumer].at(p),
                                      schedules[g.producer].at(q)));
    });
    out.push_back(std::move(gp));
  }
  return out;
}

/// Condition (2), per module: no two computations of one module may share
/// a (cell, tick) slot. (Cross-module sharing is governed separately by
/// the system's fold key.)
bool module_conflict_free(const std::vector<std::pair<IntVec, i64>>& slots,
                          const IntMat& /*s*/) {
  std::set<std::pair<IntVec, i64>> occupied;
  for (const auto& slot : slots) {
    if (!occupied.insert(slot).second) return false;
  }
  return true;
}

/// Per-module (point, tick, fold key) list entry.
struct PointInfo {
  IntVec point;
  i64 tick = 0;
  IntVec key;
};

/// A locally feasible candidate matrix, with its sorted distinct label
/// list for incremental cell counting.
struct Candidate {
  IntMat s;
  std::vector<IntVec> labels;
};

/// One worker's backtracking over a chunk of module 0's candidate
/// matrices. All mutable search state — chosen stack, label/slot
/// registries, incumbent, routability cache — is private to the worker.
struct SpaceWorker {
  const ModuleSystem* sys = nullptr;
  const std::vector<std::vector<Candidate>>* candidates = nullptr;
  const std::vector<std::vector<const GuardPairs*>>* guards_at = nullptr;
  const std::vector<std::vector<PointInfo>>* module_points = nullptr;
  const Interconnect* net = nullptr;

  std::vector<const Candidate*> chosen;
  std::map<IntVec, std::size_t> label_refs;  // Union with multiplicity.
  // Cross-module slot registry: (cell, tick) -> (fold key, refcount).
  std::map<std::pair<IntVec, i64>, std::pair<IntVec, std::size_t>> slot_refs;
  std::size_t incumbent = std::numeric_limits<std::size_t>::max();
  std::vector<ModuleSpaceAssignment> optima;
  std::size_t checked = 0;

  void run(std::size_t begin, std::size_t end) {
    RoutabilityCache cache(*net);
    chosen.assign(sys->module_count(), nullptr);
    descend(0, begin, end, cache);
  }

 private:
  void descend(std::size_t m, std::size_t begin, std::size_t end,
               RoutabilityCache& cache) {
    const std::size_t module_count = sys->module_count();
    const auto& level = (*candidates)[m];
    for (std::size_t idx = begin; idx < end; ++idx) {
      const Candidate& cand = level[idx];
      chosen[m] = &cand;
      bool feasible = true;
      for (const auto* gp : (*guards_at)[m]) {
        if (!check_global(*gp, chosen[gp->dep->consumer]->s,
                          chosen[gp->dep->producer]->s, cache)) {
          feasible = false;
          break;
        }
      }
      if (feasible) {
        // Claim this module's slots; sharing across modules requires equal
        // fold keys (and a fold key to be defined at all).
        std::vector<std::pair<IntVec, i64>> claimed;
        claimed.reserve((*module_points)[m].size());
        for (const auto& info : (*module_points)[m]) {
          auto slot = std::make_pair(cand.s * info.point, info.tick);
          auto [it, inserted] =
              slot_refs.emplace(slot, std::make_pair(info.key, 1u));
          if (!inserted) {
            if (!sys->fold_key() || it->second.first != info.key) {
              feasible = false;
              break;
            }
            ++it->second.second;
          }
          claimed.push_back(std::move(slot));
        }
        if (feasible) {
          for (const auto& l : cand.labels) ++label_refs[l];
          if (label_refs.size() <= incumbent) {
            if (m + 1 == module_count) {
              complete();
            } else {
              descend(m + 1, 0, (*candidates)[m + 1].size(), cache);
            }
          }
          for (const auto& l : cand.labels) {
            const auto it = label_refs.find(l);
            if (--(it->second) == 0) label_refs.erase(it);
          }
        }
        for (const auto& slot : claimed) {
          const auto it = slot_refs.find(slot);
          if (--(it->second.second) == 0) slot_refs.erase(it);
        }
      }
      chosen[m] = nullptr;
    }
  }

  void complete() {
    ++checked;
    const std::size_t cells = label_refs.size();
    if (cells > incumbent) return;
    ModuleSpaceAssignment a;
    a.spaces.reserve(chosen.size());
    for (const auto* c : chosen) a.spaces.push_back(c->s);
    a.cell_count = cells;
    if (cells < incumbent) {
      incumbent = cells;
      optima.clear();
    }
    optima.push_back(std::move(a));
  }
};

}  // namespace

bool spaces_satisfy(const ModuleSystem& sys,
                    const std::vector<LinearSchedule>& schedules,
                    const std::vector<IntMat>& spaces,
                    const Interconnect& net) {
  NUSYS_REQUIRE(schedules.size() == sys.module_count() &&
                    spaces.size() == sys.module_count(),
                "spaces_satisfy: one schedule and one space per module");
  RoutabilityCache cache(net);
  // Cross-module slot registry: (cell, tick) -> fold key of the occupant.
  std::map<std::pair<IntVec, i64>, IntVec> slots;
  for (std::size_t m = 0; m < sys.module_count(); ++m) {
    NUSYS_REQUIRE(spaces[m].rows() == net.label_dim() &&
                      spaces[m].cols() == sys.dim(),
                  "spaces_satisfy: space matrix shape mismatch");
    // Local routability (eq. (3) per module).
    for (const auto& dep : sys.module(m).local_deps) {
      if (!cache.routable(spaces[m] * dep.vector,
                          schedules[m].slack(dep.vector))) {
        return false;
      }
    }
    // Per-module no-conflict condition (2), plus the cross-module folding
    // rule: a slot may be shared between modules only when the fold keys
    // agree (and the system defines a fold key at all).
    std::set<std::pair<IntVec, i64>> own;
    bool conflict = false;
    sys.module(m).domain.for_each([&](const IntVec& p) {
      if (conflict) return;
      auto slot = std::make_pair(spaces[m] * p, schedules[m].at(p));
      if (!own.insert(slot).second) {
        conflict = true;
        return;
      }
      const IntVec key =
          sys.fold_key() ? sys.fold_key()->apply(p) : p;
      const auto [it, inserted] = slots.emplace(slot, key);
      if (!inserted && (!sys.fold_key() || it->second != key)) {
        conflict = true;
      }
    });
    if (conflict) return false;
  }
  // Global routability.
  for (const auto& gp : enumerate_guards(sys, schedules)) {
    if (!check_global(gp, spaces[gp.dep->consumer], spaces[gp.dep->producer],
                      cache)) {
      return false;
    }
  }
  return true;
}

std::size_t count_cells(const ModuleSystem& sys,
                        const std::vector<IntMat>& spaces) {
  NUSYS_REQUIRE(spaces.size() == sys.module_count(),
                "count_cells: one space per module");
  std::set<IntVec> labels;
  for (std::size_t m = 0; m < sys.module_count(); ++m) {
    sys.module(m).domain.for_each(
        [&](const IntVec& p) { labels.insert(spaces[m] * p); });
  }
  return labels.size();
}

ModuleSpaceResult find_module_spaces(const ModuleSystem& sys,
                                     const std::vector<LinearSchedule>& schedules,
                                     const Interconnect& net,
                                     const ModuleSpaceOptions& options) {
  sys.validate();
  NUSYS_REQUIRE(schedules.size() == sys.module_count(),
                "find_module_spaces: one schedule per module");
  const WallTimer timer;
  const std::size_t n = sys.dim();
  const std::size_t module_count = sys.module_count();
  NUSYS_REQUIRE(module_count >= 1, "find_module_spaces: empty module system");
  const std::size_t label_dim = net.label_dim();
  RoutabilityCache cache(net);

  ModuleSpaceResult result;

  // Per-module (point, tick, fold key) lists.
  std::vector<std::vector<PointInfo>> module_points(module_count);
  for (std::size_t m = 0; m < module_count; ++m) {
    sys.module(m).domain.for_each([&](const IntVec& p) {
      module_points[m].push_back(
          {p, schedules[m].at(p), sys.fold_key() ? sys.fold_key()->apply(p) : p});
    });
  }

  // Candidate matrices per module: must route local deps within slack and
  // be conflict-free on the module's own domain.
  std::vector<std::vector<Candidate>> candidates(module_count);
  {
    const auto row_candidates = coefficient_cube(n, options.coeff_bound);
    std::vector<IntVec> rows(label_dim, IntVec(n));
    for (std::size_t m = 0; m < module_count; ++m) {
      const auto& deps = sys.module(m).local_deps;
      auto build = [&](auto&& self, std::size_t row) -> void {
        if (row == label_dim) {
          ++result.examined;
          const IntMat s = IntMat::from_rows(rows);
          for (const auto& dep : deps) {
            if (!cache.routable(s * dep.vector,
                                schedules[m].slack(dep.vector))) {
              return;
            }
          }
          std::vector<std::pair<IntVec, i64>> slots;
          slots.reserve(module_points[m].size());
          for (const auto& info : module_points[m]) {
            slots.emplace_back(s * info.point, info.tick);
          }
          if (!module_conflict_free(slots, s)) return;
          Candidate cand;
          cand.s = s;
          std::set<IntVec> labels;
          for (const auto& info : module_points[m]) labels.insert(s * info.point);
          cand.labels.assign(labels.begin(), labels.end());
          candidates[m].push_back(std::move(cand));
          return;
        }
        for (const auto& r : row_candidates) {
          rows[row] = r;
          self(self, row + 1);
        }
      };
      build(build, 0);
      result.feasible_count += candidates[m].size();
      if (candidates[m].empty()) {
        result.wall_seconds = timer.seconds();
        return result;
      }
    }
  }

  // Globals indexed by the later endpoint module.
  const auto guards = enumerate_guards(sys, schedules);
  std::vector<std::vector<const GuardPairs*>> guards_at(module_count);
  for (const auto& gp : guards) {
    guards_at[std::max(gp.dep->consumer, gp.dep->producer)].push_back(&gp);
  }

  // Fan out over module 0's candidate matrices; every worker owns its
  // search state outright (including a private routability cache).
  const std::size_t workers =
      options.parallelism.workers_for(candidates[0].size());
  std::vector<SpaceWorker> parts(workers);
  run_chunked(candidates[0].size(), workers,
              [&](std::size_t worker, std::size_t begin, std::size_t end) {
                SpaceWorker& part = parts[worker];
                part.sys = &sys;
                part.candidates = &candidates;
                part.guards_at = &guards_at;
                part.module_points = &module_points;
                part.net = &net;
                part.run(begin, end);
              });

  // Merge in worker order (= sequential exploration order), then rank.
  result.workers_used = workers;
  std::size_t incumbent = std::numeric_limits<std::size_t>::max();
  for (const auto& part : parts) {
    result.assignments_checked += part.checked;
    incumbent = std::min(incumbent, part.incumbent);
  }
  for (auto& part : parts) {
    if (part.incumbent != incumbent) continue;
    result.optima.insert(result.optima.end(),
                         std::make_move_iterator(part.optima.begin()),
                         std::make_move_iterator(part.optima.end()));
  }

  std::stable_sort(result.optima.begin(), result.optima.end(),
                   [](const ModuleSpaceAssignment& a,
                      const ModuleSpaceAssignment& b) {
                     if (a.cell_count != b.cell_count) {
                       return a.cell_count < b.cell_count;
                     }
                     const i64 ea = abs_entries(a.spaces);
                     const i64 eb = abs_entries(b.spaces);
                     if (ea != eb) return ea < eb;
                     return spaces_lex_before(a.spaces, b.spaces);
                   });
  if (options.max_results > 0 && result.optima.size() > options.max_results) {
    result.optima.resize(options.max_results);
  }
  result.wall_seconds = timer.seconds();
  return result;
}

}  // namespace nusys
