#include "modules/pipelining.hpp"

#include <map>
#include <set>

#include "support/errors.hpp"

namespace nusys {

i64 min_pipeline_period(const ModuleSystem& sys,
                        const std::vector<LinearSchedule>& schedules,
                        const std::vector<IntMat>& spaces, i64 max_period) {
  NUSYS_REQUIRE(schedules.size() == sys.module_count() &&
                    spaces.size() == sys.module_count(),
                "min_pipeline_period: one schedule and one space per module");
  NUSYS_REQUIRE(max_period >= 1, "min_pipeline_period: max_period >= 1");

  // Distinct busy slots per cell (fold-shared slots collapse to one).
  std::map<IntVec, std::set<i64>> busy;
  for (std::size_t m = 0; m < sys.module_count(); ++m) {
    sys.module(m).domain.for_each([&](const IntVec& p) {
      busy[spaces[m] * p].insert(schedules[m].at(p));
    });
  }

  for (i64 period = 1; period <= max_period; ++period) {
    bool ok = true;
    for (const auto& [cell, ticks] : busy) {
      // Two ticks of one cell whose difference is a multiple of `period`
      // collide between some pair of instances.
      std::set<i64> residues;
      for (const i64 t : ticks) {
        const i64 r = ((t % period) + period) % period;
        if (!residues.insert(r).second) {
          ok = false;
          break;
        }
      }
      if (!ok) break;
    }
    if (ok) return period;
  }
  return 0;
}

}  // namespace nusys
