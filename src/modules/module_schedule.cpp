#include "modules/module_schedule.hpp"

#include <algorithm>
#include <limits>

#include "schedule/search.hpp"

namespace nusys {

const ModuleScheduleAssignment& ModuleScheduleResult::best() const {
  if (optima.empty()) {
    throw SearchFailure(
        "no feasible per-module schedule assignment within the coefficient "
        "bound; widen the bound or revisit the module decomposition");
  }
  return optima.front();
}

StageTelemetry ModuleScheduleResult::telemetry(std::string stage) const {
  StageTelemetry t;
  t.stage = std::move(stage);
  t.examined = examined;
  t.feasible = feasible_count;
  t.workers = workers_used;
  t.wall_seconds = wall_seconds;
  return t;
}

namespace {

/// Pre-enumerated (consumer point, producer point) pairs of one GlobalDep.
struct GuardPairs {
  const GlobalDep* dep = nullptr;
  std::vector<std::pair<IntVec, IntVec>> pairs;
};

bool global_dep_satisfied(const GuardPairs& g,
                          const LinearSchedule& consumer,
                          const LinearSchedule& producer) {
  for (const auto& [p, q] : g.pairs) {
    const i64 tc = consumer.at(p);
    const i64 tp = producer.at(q);
    if (g.dep->allow_equal_time ? tc < tp : tc <= tp) return false;
  }
  return true;
}

std::vector<GuardPairs> enumerate_guards(const ModuleSystem& sys) {
  std::vector<GuardPairs> out;
  out.reserve(sys.globals().size());
  for (const auto& g : sys.globals()) {
    GuardPairs gp;
    gp.dep = &g;
    g.guard.for_each([&](const IntVec& p) {
      gp.pairs.emplace_back(p, g.producer_point.apply(p));
    });
    out.push_back(std::move(gp));
  }
  return out;
}

/// A locally feasible candidate schedule with its span precomputed.
struct Candidate {
  LinearSchedule schedule;
  TimeSpan span;
};

/// One worker's backtracking over a chunk of module 0's candidates, with
/// purely local mutable state; shared inputs are read-only.
struct ScheduleWorker {
  const std::vector<std::vector<Candidate>>* candidates = nullptr;
  const std::vector<std::vector<const GuardPairs*>>* guards_at = nullptr;
  std::size_t module_count = 0;
  const CancelToken* cancel = nullptr;

  std::vector<const Candidate*> chosen;
  i64 incumbent = std::numeric_limits<i64>::max();
  std::vector<ModuleScheduleAssignment> optima;
  std::size_t checked = 0;
  std::size_t steps = 0;

  void run(std::size_t begin, std::size_t end) {
    chosen.assign(module_count, nullptr);
    descend(0, std::numeric_limits<i64>::max(),
            std::numeric_limits<i64>::min(), begin, end);
  }

 private:
  void descend(std::size_t m, i64 lo, i64 hi, std::size_t begin,
               std::size_t end) {
    const auto& level = (*candidates)[m];
    for (std::size_t idx = begin; idx < end; ++idx) {
      if (steps++ % kCancelPollStride == 0) {
        throw_if_cancelled(cancel, "module-schedule search");
      }
      const Candidate& cand = level[idx];
      const i64 new_lo = std::min(lo, cand.span.first);
      const i64 new_hi = std::max(hi, cand.span.last);
      // Partial span already worse than the incumbent: prune.
      if (new_hi - new_lo > incumbent) continue;
      chosen[m] = &cand;
      bool feasible = true;
      for (const auto* gp : (*guards_at)[m]) {
        if (!global_dep_satisfied(*gp, chosen[gp->dep->consumer]->schedule,
                                  chosen[gp->dep->producer]->schedule)) {
          feasible = false;
          break;
        }
      }
      if (feasible) {
        if (m + 1 == module_count) {
          complete(new_lo, new_hi);
        } else {
          descend(m + 1, new_lo, new_hi, 0, (*candidates)[m + 1].size());
        }
      }
      chosen[m] = nullptr;
    }
  }

  void complete(i64 lo, i64 hi) {
    ++checked;
    const i64 makespan = checked_sub(hi, lo);
    ModuleScheduleAssignment a;
    a.schedules.reserve(module_count);
    for (const auto* c : chosen) a.schedules.push_back(c->schedule);
    a.makespan = makespan;
    if (makespan < incumbent) {
      incumbent = makespan;
      optima.clear();
      optima.push_back(std::move(a));
    } else if (makespan == incumbent) {
      optima.push_back(std::move(a));
    }
  }
};

}  // namespace

bool schedules_satisfy(const ModuleSystem& sys,
                       const std::vector<LinearSchedule>& schedules) {
  NUSYS_REQUIRE(schedules.size() == sys.module_count(),
                "schedules_satisfy: one schedule per module required");
  for (std::size_t m = 0; m < sys.module_count(); ++m) {
    NUSYS_REQUIRE(schedules[m].dim() == sys.dim(),
                  "schedules_satisfy: schedule dimension mismatch");
    if (!schedules[m].is_feasible(sys.module(m).local_deps.vectors())) {
      return false;
    }
  }
  for (const auto& gp : enumerate_guards(sys)) {
    if (!global_dep_satisfied(gp, schedules[gp.dep->consumer],
                              schedules[gp.dep->producer])) {
      return false;
    }
  }
  return true;
}

i64 global_makespan(const ModuleSystem& sys,
                    const std::vector<LinearSchedule>& schedules) {
  NUSYS_REQUIRE(schedules.size() == sys.module_count(),
                "global_makespan: one schedule per module required");
  i64 lo = std::numeric_limits<i64>::max();
  i64 hi = std::numeric_limits<i64>::min();
  for (std::size_t m = 0; m < sys.module_count(); ++m) {
    const auto span = schedules[m].span(sys.module(m).domain);
    lo = std::min(lo, span.first);
    hi = std::max(hi, span.last);
  }
  return checked_sub(hi, lo);
}

ModuleScheduleResult find_module_schedules(
    const ModuleSystem& sys, const ModuleScheduleOptions& options) {
  sys.validate();
  const WallTimer timer;
  const std::size_t n = sys.dim();
  const std::size_t module_count = sys.module_count();
  NUSYS_REQUIRE(module_count >= 1,
                "find_module_schedules: empty module system");

  ModuleScheduleResult result;

  // Locally feasible candidates per module, with their spans precomputed.
  std::vector<std::vector<Candidate>> candidates(module_count);
  for (std::size_t m = 0; m < module_count; ++m) {
    throw_if_cancelled(options.cancel, "module-schedule search");
    const auto deps = sys.module(m).local_deps.vectors();
    for (const auto& coeffs : coefficient_cube(n, options.coeff_bound)) {
      ++result.examined;
      const LinearSchedule t(coeffs);
      if (!deps.empty() && !t.is_feasible(deps)) continue;
      candidates[m].push_back({t, t.span(sys.module(m).domain)});
    }
    result.feasible_count += candidates[m].size();
    if (candidates[m].empty()) {
      result.wall_seconds = timer.seconds();
      return result;
    }
  }

  // Globals indexed by the later of their two endpoint modules, so each is
  // checked as soon as both endpoints are assigned.
  const auto guards = enumerate_guards(sys);
  std::vector<std::vector<const GuardPairs*>> guards_at(module_count);
  for (const auto& gp : guards) {
    guards_at[std::max(gp.dep->consumer, gp.dep->producer)].push_back(&gp);
  }

  // Fan out over module 0's candidate list; each worker explores its chunk
  // with a private incumbent and optima list.
  const std::size_t workers =
      options.parallelism.workers_for(candidates[0].size());
  std::vector<ScheduleWorker> parts(workers);
  run_chunked(candidates[0].size(), workers,
              [&](std::size_t worker, std::size_t begin, std::size_t end) {
                ScheduleWorker& part = parts[worker];
                part.candidates = &candidates;
                part.guards_at = &guards_at;
                part.module_count = module_count;
                part.cancel = options.cancel;
                part.run(begin, end);
              });

  // Merge in worker order: chunks are contiguous over module 0's candidate
  // list, so concatenating the winning workers' optima reproduces the
  // sequential exploration order.
  result.workers_used = workers;
  i64 incumbent = std::numeric_limits<i64>::max();
  for (const auto& part : parts) {
    result.assignments_checked += part.checked;
    incumbent = std::min(incumbent, part.incumbent);
  }
  for (auto& part : parts) {
    if (part.incumbent != incumbent) continue;
    result.optima.insert(result.optima.end(),
                         std::make_move_iterator(part.optima.begin()),
                         std::make_move_iterator(part.optima.end()));
  }

  if (options.max_results > 0 && result.optima.size() > options.max_results) {
    result.optima.resize(options.max_results);
  }
  result.wall_seconds = timer.seconds();
  return result;
}

}  // namespace nusys
