#include "modules/module_schedule.hpp"

#include <algorithm>
#include <atomic>
#include <limits>

#include "schedule/search.hpp"

namespace nusys {

const ModuleScheduleAssignment& ModuleScheduleResult::best() const {
  if (optima.empty()) {
    throw SearchFailure(
        "no feasible per-module schedule assignment within the coefficient "
        "bound; widen the bound or revisit the module decomposition");
  }
  return optima.front();
}

StageTelemetry ModuleScheduleResult::telemetry(std::string stage) const {
  StageTelemetry t;
  t.stage = std::move(stage);
  t.examined = examined;
  t.feasible = feasible_count;
  t.pruned = pruned;
  t.workers = workers_used;
  t.wall_seconds = wall_seconds;
  return t;
}

namespace {

/// Pre-enumerated (consumer point, producer point) pairs of one GlobalDep.
struct GuardPairs {
  const GlobalDep* dep = nullptr;
  std::vector<std::pair<IntVec, IntVec>> pairs;
};

bool global_dep_satisfied(const GuardPairs& g,
                          const LinearSchedule& consumer,
                          const LinearSchedule& producer) {
  for (const auto& [p, q] : g.pairs) {
    const i64 tc = consumer.at(p);
    const i64 tp = producer.at(q);
    if (g.dep->allow_equal_time ? tc < tp : tc <= tp) return false;
  }
  return true;
}

std::vector<GuardPairs> enumerate_guards(const ModuleSystem& sys) {
  std::vector<GuardPairs> out;
  out.reserve(sys.globals().size());
  for (const auto& g : sys.globals()) {
    GuardPairs gp;
    gp.dep = &g;
    g.guard.for_each([&](const IntVec& p) {
      gp.pairs.emplace_back(p, g.producer_point.apply(p));
    });
    out.push_back(std::move(gp));
  }
  return out;
}

/// One global-dep statement prepared for the inner search loop: the guard
/// points hull-reduced on the consumer side (exact for the affine
/// firing-order margin; see search/kernels.hpp).
struct GuardCheck {
  const GlobalDep* dep = nullptr;
  GuardPairKernel kernel;
};

/// A locally feasible candidate schedule with its span precomputed.
struct Candidate {
  LinearSchedule schedule;
  TimeSpan span;
};

/// Publishes `makespan` into the cross-worker incumbent if it improves it
/// (relaxed ordering: the shared bound is a pruning hint only; recorded
/// optima are always validated against worker-local state and the merge).
void offer_incumbent(std::atomic<i64>& shared, i64 makespan) {
  i64 cur = shared.load(std::memory_order_relaxed);
  while (makespan < cur &&
         !shared.compare_exchange_weak(cur, makespan,
                                       std::memory_order_relaxed)) {
  }
}

/// One worker's backtracking over a chunk of module 0's candidates, with
/// purely local mutable state except the shared incumbent bound; all other
/// shared inputs are read-only.
struct ScheduleWorker {
  const std::vector<std::vector<Candidate>>* candidates = nullptr;
  const std::vector<std::vector<const GuardCheck*>>* guards_at = nullptr;
  std::size_t module_count = 0;
  const CancelToken* cancel = nullptr;
  std::atomic<i64>* shared_best = nullptr;

  std::vector<const Candidate*> chosen;
  i64 incumbent = std::numeric_limits<i64>::max();
  std::vector<ModuleScheduleAssignment> optima;
  std::size_t checked = 0;
  std::size_t pruned = 0;
  std::size_t steps = 0;

  void run(std::size_t begin, std::size_t end) {
    chosen.assign(module_count, nullptr);
    descend(0, std::numeric_limits<i64>::max(),
            std::numeric_limits<i64>::min(), begin, end);
  }

 private:
  void descend(std::size_t m, i64 lo, i64 hi, std::size_t begin,
               std::size_t end) {
    const auto& level = (*candidates)[m];
    for (std::size_t idx = begin; idx < end; ++idx) {
      if (steps++ % kCancelPollStride == 0) {
        throw_if_cancelled(cancel, "module-schedule search");
      }
      const Candidate& cand = level[idx];
      const i64 new_lo = std::min(lo, cand.span.first);
      const i64 new_hi = std::max(hi, cand.span.last);
      // Partial span already worse than the incumbent (the better of this
      // worker's and the cross-worker bound): prune. Exact, because spans
      // only grow along a branch and the shared bound never drops below
      // the final global optimum.
      const i64 bound = std::min(
          incumbent, shared_best->load(std::memory_order_relaxed));
      if (new_hi - new_lo > bound) {
        ++pruned;
        continue;
      }
      chosen[m] = &cand;
      bool feasible = true;
      for (const auto* gc : (*guards_at)[m]) {
        if (!gc->kernel.satisfied(chosen[gc->dep->consumer]->schedule,
                                  chosen[gc->dep->producer]->schedule,
                                  gc->dep->allow_equal_time)) {
          feasible = false;
          break;
        }
      }
      if (feasible) {
        if (m + 1 == module_count) {
          complete(new_lo, new_hi);
        } else {
          descend(m + 1, new_lo, new_hi, 0, (*candidates)[m + 1].size());
        }
      }
      chosen[m] = nullptr;
    }
  }

  void complete(i64 lo, i64 hi) {
    ++checked;
    const i64 makespan = checked_sub(hi, lo);
    ModuleScheduleAssignment a;
    a.schedules.reserve(module_count);
    for (const auto* c : chosen) a.schedules.push_back(c->schedule);
    a.makespan = makespan;
    if (makespan < incumbent) {
      incumbent = makespan;
      optima.clear();
      optima.push_back(std::move(a));
      offer_incumbent(*shared_best, makespan);
    } else if (makespan == incumbent) {
      optima.push_back(std::move(a));
    }
  }
};

}  // namespace

bool schedules_satisfy(const ModuleSystem& sys,
                       const std::vector<LinearSchedule>& schedules) {
  NUSYS_REQUIRE(schedules.size() == sys.module_count(),
                "schedules_satisfy: one schedule per module required");
  for (std::size_t m = 0; m < sys.module_count(); ++m) {
    NUSYS_REQUIRE(schedules[m].dim() == sys.dim(),
                  "schedules_satisfy: schedule dimension mismatch");
    if (!schedules[m].is_feasible(sys.module(m).local_deps.vectors())) {
      return false;
    }
  }
  for (const auto& gp : enumerate_guards(sys)) {
    if (!global_dep_satisfied(gp, schedules[gp.dep->consumer],
                              schedules[gp.dep->producer])) {
      return false;
    }
  }
  return true;
}

i64 global_makespan(const ModuleSystem& sys,
                    const std::vector<LinearSchedule>& schedules) {
  NUSYS_REQUIRE(schedules.size() == sys.module_count(),
                "global_makespan: one schedule per module required");
  i64 lo = std::numeric_limits<i64>::max();
  i64 hi = std::numeric_limits<i64>::min();
  for (std::size_t m = 0; m < sys.module_count(); ++m) {
    const auto span = schedules[m].span(sys.module(m).domain);
    lo = std::min(lo, span.first);
    hi = std::max(hi, span.last);
  }
  return checked_sub(hi, lo);
}

ModuleScheduleResult find_module_schedules(
    const ModuleSystem& sys, const ModuleScheduleOptions& options) {
  sys.validate();
  const WallTimer timer;
  const std::size_t n = sys.dim();
  const std::size_t module_count = sys.module_count();
  NUSYS_REQUIRE(module_count >= 1,
                "find_module_schedules: empty module system");

  ModuleScheduleResult result;

  // Locally feasible candidates per module, with their spans precomputed.
  // The coefficient cube is the same for every module, so enumerate it
  // once; spans run through each module's hull-reduced SpanKernel and the
  // local-dependence feasibility check through one batched SoA pass.
  const auto cube = coefficient_cube(n, options.coeff_bound);
  std::vector<std::vector<Candidate>> candidates(module_count);
  for (std::size_t m = 0; m < module_count; ++m) {
    throw_if_cancelled(options.cancel, "module-schedule search");
    const PointBlock deps_block(sys.module(m).local_deps.vectors());
    const SpanKernel span(sys.module(m).domain.points(),
                          options.hull_kernels);
    for (const auto& coeffs : cube) {
      ++result.examined;
      if (!deps_block.all_dots_positive(coeffs)) continue;
      const LinearSchedule t(coeffs);
      candidates[m].push_back({t, span.span(t)});
    }
    result.feasible_count += candidates[m].size();
    if (candidates[m].empty()) {
      result.wall_seconds = timer.seconds();
      return result;
    }
  }

  // Globals indexed by the later of their two endpoint modules, so each is
  // checked as soon as both endpoints are assigned. The guard points of
  // each statement are hull-reduced once, up front.
  std::vector<GuardCheck> checks;
  checks.reserve(sys.globals().size());
  for (const auto& g : sys.globals()) {
    checks.push_back({&g, GuardPairKernel(g.guard.points(), g.producer_point,
                                          options.hull_kernels)});
  }
  std::vector<std::vector<const GuardCheck*>> guards_at(module_count);
  for (const auto& gc : checks) {
    guards_at[std::max(gc.dep->consumer, gc.dep->producer)].push_back(&gc);
  }

  // Fan out over module 0's candidate list; each worker explores its chunk
  // with a private incumbent and optima list, sharing only the makespan
  // bound used for pruning.
  const std::size_t workers =
      options.parallelism.workers_for(candidates[0].size());
  std::atomic<i64> shared_best{std::numeric_limits<i64>::max()};
  std::vector<ScheduleWorker> parts(workers);
  run_chunked(candidates[0].size(), workers,
              [&](std::size_t worker, std::size_t begin, std::size_t end) {
                ScheduleWorker& part = parts[worker];
                part.candidates = &candidates;
                part.guards_at = &guards_at;
                part.module_count = module_count;
                part.cancel = options.cancel;
                part.shared_best = &shared_best;
                part.run(begin, end);
              });

  // Merge in worker order: chunks are contiguous over module 0's candidate
  // list, so concatenating the winning workers' optima reproduces the
  // sequential exploration order.
  result.workers_used = workers;
  i64 incumbent = std::numeric_limits<i64>::max();
  for (const auto& part : parts) {
    result.assignments_checked += part.checked;
    result.pruned += part.pruned;
    incumbent = std::min(incumbent, part.incumbent);
  }
  for (auto& part : parts) {
    if (part.incumbent != incumbent) continue;
    result.optima.insert(result.optima.end(),
                         std::make_move_iterator(part.optima.begin()),
                         std::make_move_iterator(part.optima.end()));
  }

  if (options.max_results > 0 && result.optima.size() > options.max_results) {
    result.optima.resize(options.max_results);
  }
  result.wall_seconds = timer.seconds();
  return result;
}

}  // namespace nusys
