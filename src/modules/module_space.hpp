// Per-module space-map search under global constraints (Sec. V-B, VI).
//
// Each module gets its own space matrix S_m. Feasibility demands:
//   * local routability: for every local dependence d of module m,
//     S_m·d = Δ·k with k >= 0 and Σk <= t_m(d) (eq. (3) per module);
//   * global routability: for every global statement and every guard point
//     p with producer image q, the displacement S_c·p - S_p·q must be
//     routable within the time slack t_c(p) - t_p(q) — the paper's "the
//     distance of the cells ... cannot be more than d";
//   * injectivity per module: no two computations of the *same* module
//     share a processor at the same tick — condition (2) checked exactly,
//     point by point, which correctly admits degenerate modules like the A5
//     combiner whose domain is a plane (det-based checks would wrongly
//     reject them). Cross-module sharing is allowed: in both of the paper's
//     DP designs the last module-1 term and the last module-2 term of a
//     pair (i,j) arrive at one cell in the same cycle and the cell folds
//     them, exactly like the two operand streams of a Guibas-Kung-Thompson
//     cell.
// Assignments are ranked by processor count: running this search on the
// figure-1 interconnect recovers S' = S'' = S = (j,i); on the figure-2
// interconnect it recovers S' = (k,i), S'' = (i+j-k,i) with fewer cells —
// the paper's headline result.
//
// With `parallelism.threads > 1` the backtracking fans out over the first
// module's candidate matrices, each worker exploring a contiguous chunk
// with private state (including its own routability cache); per-worker
// optima merge in worker order, so the ranked optima and the enumeration
// counts are identical for every worker count.
#pragma once

#include <vector>

#include "modules/module_system.hpp"
#include "schedule/timing.hpp"
#include "search/kernels.hpp"
#include "space/interconnect.hpp"
#include "support/parallel.hpp"
#include "support/telemetry.hpp"

namespace nusys {

/// One complete space assignment (one matrix per module).
struct ModuleSpaceAssignment {
  std::vector<IntMat> spaces;
  std::size_t cell_count = 0;  ///< Distinct processor labels, all modules.
};

/// Options for the module-space search.
struct ModuleSpaceOptions {
  i64 coeff_bound = 1;
  /// Keep at most this many optima (0 = all).
  std::size_t max_results = 0;
  /// Worker threads over module 0's candidate matrices (0 = hardware
  /// concurrency, 1 = the exact legacy sequential path).
  SearchParallelism parallelism;
  /// Use the shared search-kernel fast paths (tightest-slack-first guard
  /// ordering, flat sorted image tables). Routability is not a linear
  /// functional, so there is no hull reduction here, but the flag still
  /// selects the optimized evaluation order; both settings return
  /// bit-identical results and off is the legacy ablation path.
  bool hull_kernels = hull_kernels_default();
};

/// Search outcome.
struct ModuleSpaceResult {
  std::vector<ModuleSpaceAssignment> optima;
  /// Complete assignments reached by the backtracking. Advisory: the
  /// incumbent trajectory (and hence pruning) depends on the chunking.
  std::size_t assignments_checked = 0;
  /// Candidate matrices enumerated across all per-module cubes
  /// (worker-invariant).
  std::size_t examined = 0;
  /// Locally feasible per-module candidate matrices kept (worker-invariant).
  std::size_t feasible_count = 0;
  /// Backtracking branches cut by the incumbent cell-count bound. Advisory:
  /// the incumbent is shared across workers through a relaxed atomic, so
  /// this count depends on chunking *and* thread timing (the ranked optima
  /// never do).
  std::size_t pruned = 0;
  /// Workers the backtracking actually used.
  std::size_t workers_used = 1;
  /// Search wall time.
  double wall_seconds = 0.0;

  [[nodiscard]] bool found() const noexcept { return !optima.empty(); }
  [[nodiscard]] const ModuleSpaceAssignment& best() const;

  /// This search as one telemetry stage named `stage`.
  [[nodiscard]] StageTelemetry telemetry(std::string stage) const;
};

/// True when `spaces` satisfies every local/global routability constraint
/// and the joint no-conflict condition, given the module schedules. Used
/// by the search and by tests that verify the paper's hand-derived maps.
[[nodiscard]] bool spaces_satisfy(const ModuleSystem& sys,
                                  const std::vector<LinearSchedule>& schedules,
                                  const std::vector<IntMat>& spaces,
                                  const Interconnect& net);

/// Distinct processor labels used by `spaces` over all module domains.
[[nodiscard]] std::size_t count_cells(const ModuleSystem& sys,
                                      const std::vector<IntMat>& spaces);

/// Exhaustive backtracking search for cell-count-optimal space assignments.
[[nodiscard]] ModuleSpaceResult find_module_spaces(
    const ModuleSystem& sys, const std::vector<LinearSchedule>& schedules,
    const Interconnect& net, const ModuleSpaceOptions& options = {});

}  // namespace nusys
