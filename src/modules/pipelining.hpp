// Block-pipelining analysis: how often can successive problem instances
// enter a mapped array?
//
// The paper optimizes the completion time of a single instance; a classic
// companion metric for systolic designs is the *block pipelining period*
// p: instance q runs with every tick shifted by q·p, and p must be large
// enough that no processor is asked to serve two different instances in
// one tick (folding across instances is not meaningful — they compute
// unrelated problems). The minimum such p measures steady-state
// throughput: one result set every p ticks. A busier but smaller array
// (figure 2) generally needs a larger p than a sparser one (figure 1);
// the ablation bench quantifies the trade.
#pragma once

#include <vector>

#include "modules/module_system.hpp"
#include "schedule/timing.hpp"

namespace nusys {

/// The minimum pipelining period of (sys, schedules, spaces): the smallest
/// p >= 1 such that shifting instances by multiples of p never lands two
/// instances on one (cell, tick). Returns 0 when no p <= max_period works.
/// Slots folded within one instance count once (they are one cell action).
[[nodiscard]] i64 min_pipeline_period(const ModuleSystem& sys,
                                      const std::vector<LinearSchedule>& schedules,
                                      const std::vector<IntMat>& spaces,
                                      i64 max_period);

}  // namespace nusys
