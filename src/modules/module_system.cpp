#include "modules/module_system.hpp"

#include <ostream>

#include "support/errors.hpp"

namespace nusys {

ModuleSystem::ModuleSystem(std::string name, std::vector<Module> modules,
                           std::vector<GlobalDep> globals)
    : name_(std::move(name)),
      modules_(std::move(modules)),
      globals_(std::move(globals)) {
  validate();
}

ModuleSystem::ModuleSystem(std::string name, std::vector<Module> modules,
                           std::vector<GlobalDep> globals, AffineMap fold_key)
    : name_(std::move(name)),
      modules_(std::move(modules)),
      globals_(std::move(globals)),
      fold_key_(std::move(fold_key)) {
  validate();
  NUSYS_VALIDATE(fold_key_->input_dim() == dim(),
                 "fold key input dimension must match the index dimension");
}

const Module& ModuleSystem::module(std::size_t i) const {
  NUSYS_REQUIRE(i < modules_.size(), "ModuleSystem::module: index range");
  return modules_[i];
}

std::size_t ModuleSystem::dim() const {
  NUSYS_REQUIRE(!modules_.empty(), "ModuleSystem::dim: no modules");
  return modules_.front().domain.dim();
}

void ModuleSystem::validate() const {
  NUSYS_VALIDATE(!modules_.empty(), "module system has no modules");
  const std::size_t n = modules_.front().domain.dim();
  for (const auto& m : modules_) {
    NUSYS_VALIDATE(!m.name.empty(), "module must be named");
    NUSYS_VALIDATE(m.domain.dim() == n,
                   "modules must share one index dimension");
    for (const auto& dep : m.local_deps) {
      NUSYS_VALIDATE(dep.vector.dim() == n,
                     "local dependence dimension mismatch");
      NUSYS_VALIDATE(!dep.vector.is_zero(),
                     "local dependence vector must be nonzero");
    }
  }
  for (const auto& g : globals_) {
    NUSYS_VALIDATE(!g.name.empty(), "global dependence must be named");
    NUSYS_VALIDATE(g.consumer < modules_.size() &&
                       g.producer < modules_.size(),
                   "global dependence references an unknown module");
    NUSYS_VALIDATE(g.guard.dim() == n,
                   "global dependence guard dimension mismatch");
    NUSYS_VALIDATE(g.producer_point.input_dim() == n &&
                       g.producer_point.output_dim() == n,
                   "global dependence producer map must be n -> n");
    const auto& consumer_domain = modules_[g.consumer].domain;
    const auto& producer_domain = modules_[g.producer].domain;
    g.guard.for_each([&](const IntVec& p) {
      NUSYS_VALIDATE(consumer_domain.contains(p),
                     "guard point of '" + g.name +
                         "' outside the consumer domain: " + p.to_string());
      const IntVec q = g.producer_point.apply(p);
      NUSYS_VALIDATE(producer_domain.contains(q),
                     "producer image of '" + g.name +
                         "' outside the producer domain: " + p.to_string() +
                         " -> " + q.to_string());
    });
  }
}

std::size_t ModuleSystem::total_computations() const {
  std::size_t total = 0;
  for (const auto& m : modules_) total += m.domain.size();
  return total;
}

std::ostream& operator<<(std::ostream& os, const ModuleSystem& sys) {
  os << "module system '" << sys.name() << "': " << sys.module_count()
     << " modules, " << sys.globals().size() << " global deps";
  return os;
}

}  // namespace nusys
