// Systems of mutually dependent recurrence modules (the output form of the
// Sec. III restructuring).
//
// The restructured algorithm is "a system of s modules, each module being a
// recurrence equation in canonic form. Non-constant data dependencies may
// occur between variables of different modules." A Module is a canonic
// recurrence (possibly with an empty local dependence set — the A5 combiner
// statement has no local recurrence); a GlobalDep is one of the correlating
// statements (A1..A5 for dynamic programming): the consumer module reads,
// at every index point of a guard domain, a value the producer module
// computed at an affine image of that point.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "ir/affine.hpp"
#include "ir/dependence.hpp"
#include "ir/domain.hpp"

namespace nusys {

/// One recurrence module of the restructured algorithm.
struct Module {
  std::string name;
  IndexDomain domain;        ///< Full n-dimensional index domain.
  DependenceSet local_deps;  ///< Constant local dependences (may be empty).
};

/// One cross-module dependence statement.
struct GlobalDep {
  std::string name;           ///< Statement label, e.g. "A1".
  std::size_t consumer = 0;   ///< Module index that reads.
  std::size_t producer = 0;   ///< Module index that wrote.
  AffineMap producer_point;   ///< Consumer index -> producer index.
  IndexDomain guard;          ///< Consumer points where the statement fires.
  /// When true the consumer may fire at the same tick as the producer
  /// (the paper's A5 uses sigma >= max[...]); otherwise strictly later.
  bool allow_equal_time = false;
};

/// A validated system of modules plus global dependence statements.
class ModuleSystem {
 public:
  /// System without a fold key: computations of different modules may never
  /// share a (processor, tick) slot.
  ModuleSystem(std::string name, std::vector<Module> modules,
               std::vector<GlobalDep> globals);

  /// System with a fold key: computations of *different* modules may share
  /// a (processor, tick) slot iff they have equal fold keys — i.e. they
  /// serve the same logical result and the cell folds them into one
  /// action. For the DP system the key is (i,j): a Guibas-Kung-Thompson
  /// cell consumes the final module-1 and module-2 terms of one pair in
  /// the same cycle.
  ModuleSystem(std::string name, std::vector<Module> modules,
               std::vector<GlobalDep> globals, AffineMap fold_key);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<Module>& modules() const noexcept {
    return modules_;
  }
  [[nodiscard]] const std::vector<GlobalDep>& globals() const noexcept {
    return globals_;
  }
  [[nodiscard]] std::size_t module_count() const noexcept {
    return modules_.size();
  }
  [[nodiscard]] const Module& module(std::size_t i) const;

  /// Shared index dimension of all modules.
  [[nodiscard]] std::size_t dim() const;

  /// Structural validation:
  ///  * all modules share one index dimension;
  ///  * local dependence vectors are nonzero and dimension-consistent;
  ///  * every guard point lies in its consumer's domain, and its producer
  ///    image lies in the producer's domain (checked by enumeration).
  /// Throws DomainError on violation.
  void validate() const;

  /// Total computation count: sum of module domain sizes.
  [[nodiscard]] std::size_t total_computations() const;

  /// The fold key map, if any (see the two constructors).
  [[nodiscard]] const std::optional<AffineMap>& fold_key() const noexcept {
    return fold_key_;
  }

 private:
  std::string name_;
  std::vector<Module> modules_;
  std::vector<GlobalDep> globals_;
  std::optional<AffineMap> fold_key_;
};

std::ostream& operator<<(std::ostream& os, const ModuleSystem& sys);

}  // namespace nusys
