// Extensional verification of a mapped module system — the Sec. V
// counterpart of verify/spacetime.hpp. spaces_satisfy() answers yes/no
// inside the search loop; this verifier explains *why* a design fails,
// listing every violated constraint: local causality/routability per
// module, per-module exclusivity, fold-rule breaches, and global
// (A1..A5-style) causality and routability at each guard point.
#pragma once

#include <vector>

#include "modules/module_system.hpp"
#include "schedule/timing.hpp"
#include "space/interconnect.hpp"
#include "verify/spacetime.hpp"

namespace nusys {

/// Outcome of verifying one module-system design.
struct ModuleVerificationReport {
  std::vector<Violation> violations;
  std::size_t computations_checked = 0;
  std::size_t local_instances = 0;   ///< Local dependence instances routed.
  std::size_t global_instances = 0;  ///< Guard points routed.

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
  [[nodiscard]] std::size_t count(Violation::Kind kind) const;
};

/// Verifies (schedules, spaces) for `sys` on `net` by full enumeration.
[[nodiscard]] ModuleVerificationReport verify_module_design(
    const ModuleSystem& sys, const std::vector<LinearSchedule>& schedules,
    const std::vector<IntMat>& spaces, const Interconnect& net);

}  // namespace nusys
