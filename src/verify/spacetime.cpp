#include "verify/spacetime.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "space/routing.hpp"

namespace nusys {

std::size_t VerificationReport::count(Violation::Kind kind) const {
  std::size_t c = 0;
  for (const auto& v : violations) {
    if (v.kind == kind) ++c;
  }
  return c;
}

VerificationReport verify_design(const CanonicRecurrence& recurrence,
                                 const LinearSchedule& timing,
                                 const IntMat& space,
                                 const Interconnect& net) {
  recurrence.validate();
  NUSYS_REQUIRE(timing.dim() == recurrence.domain().dim(),
                "verify_design: timing dimension mismatch");
  NUSYS_REQUIRE(space.cols() == recurrence.domain().dim() &&
                    space.rows() == net.label_dim(),
                "verify_design: space shape mismatch");

  VerificationReport report;
  const auto& domain = recurrence.domain();

  // Exclusivity. Collect every computation's (tick, cell) slot first, then
  // sort by (tick, cell, point) before reporting, so the FIRST divergence
  // tick leads the conflict list deterministically — independent of the
  // domain's iteration order — and each collision names the computation it
  // diverged from.
  std::vector<std::pair<std::pair<i64, IntVec>, IntVec>> slots;
  domain.for_each([&](const IntVec& p) {
    ++report.computations_checked;
    slots.push_back({{timing.at(p), space * p}, p});
  });
  std::stable_sort(slots.begin(), slots.end());
  for (std::size_t i = 1; i < slots.size(); ++i) {
    if (slots[i].first != slots[i - 1].first) continue;
    std::ostringstream os;
    os << "computation " << slots[i].second << " collides with "
       << slots[i - 1].second << " at cell " << slots[i].first.second
       << ", tick " << slots[i].first.first;
    report.violations.push_back({Violation::Kind::kConflict, os.str()});
  }

  // Causality + routability + per-(link, variable, tick) load under ALAP
  // forwarding (each value arrives exactly at its consumption tick).
  std::map<std::tuple<IntVec, std::string, std::string, i64>, IntVec>
      wire_load;  // (from-cell, link, variable, tick) -> producer point.
  domain.for_each([&](const IntVec& p) {
    for (const auto& dep : recurrence.dependences()) {
      const IntVec producer = p - dep.vector;
      if (!domain.contains(producer)) continue;  // Boundary input.
      ++report.values_routed;
      const i64 slack = timing.at(p) - timing.at(producer);
      if (slack <= 0) {
        std::ostringstream os;
        os << "operand " << dep.variable << " of " << p << " produced at "
           << producer << " only " << slack << " tick(s) earlier";
        report.violations.push_back({Violation::Kind::kCausality, os.str()});
        continue;
      }
      const IntVec disp = space * p - space * producer;
      const auto route = route_displacement(net, disp, slack);
      if (!route) {
        std::ostringstream os;
        os << "operand " << dep.variable << " of " << p
           << " cannot travel displacement " << disp << " in " << slack
           << " tick(s)";
        report.violations.push_back({Violation::Kind::kUnroutable, os.str()});
        continue;
      }
      // ALAP hop expansion: arrive exactly at timing.at(p).
      IntVec at = space * producer;
      i64 t = timing.at(p) - route->total_hops;
      for (std::size_t l = 0; l < net.link_count(); ++l) {
        for (i64 c = 0; c < route->hops_per_link[l]; ++c) {
          const auto key = std::make_tuple(at, net.link(l).name,
                                           dep.variable, t);
          const auto [it, inserted] = wire_load.emplace(key, producer);
          if (!inserted && it->second != producer) {
            std::ostringstream os;
            os << "wire (" << at << " -> " << net.link(l).name << ", "
               << dep.variable << ") carries two values at tick " << t;
            report.violations.push_back(
                {Violation::Kind::kLinkOverload, os.str()});
          }
          at += net.link(l).direction;
          ++t;
        }
      }
    }
  });
  return report;
}

std::ostream& operator<<(std::ostream& os, const VerificationReport& r) {
  os << "verification: " << r.computations_checked << " computations, "
     << r.values_routed << " values, "
     << (r.ok() ? "OK" : std::to_string(r.violations.size()) + " violations");
  for (const auto& v : r.violations) os << "\n  " << v.detail;
  return os;
}

}  // namespace nusys
