#include "verify/module_spacetime.hpp"

#include <map>
#include <set>
#include <sstream>

#include "space/routing.hpp"

namespace nusys {

std::size_t ModuleVerificationReport::count(Violation::Kind kind) const {
  std::size_t c = 0;
  for (const auto& v : violations) {
    if (v.kind == kind) ++c;
  }
  return c;
}

ModuleVerificationReport verify_module_design(
    const ModuleSystem& sys, const std::vector<LinearSchedule>& schedules,
    const std::vector<IntMat>& spaces, const Interconnect& net) {
  sys.validate();
  NUSYS_REQUIRE(schedules.size() == sys.module_count() &&
                    spaces.size() == sys.module_count(),
                "verify_module_design: one schedule and one space per module");

  ModuleVerificationReport report;
  const auto add = [&](Violation::Kind kind, const std::string& detail) {
    report.violations.push_back({kind, detail});
  };

  // Per-module exclusivity + cross-module fold rule.
  std::map<std::pair<IntVec, i64>, std::pair<std::size_t, IntVec>> slots;
  for (std::size_t m = 0; m < sys.module_count(); ++m) {
    NUSYS_REQUIRE(spaces[m].rows() == net.label_dim() &&
                      spaces[m].cols() == sys.dim(),
                  "verify_module_design: space shape mismatch");
    std::set<std::pair<IntVec, i64>> own;
    sys.module(m).domain.for_each([&](const IntVec& p) {
      ++report.computations_checked;
      const auto slot = std::make_pair(spaces[m] * p, schedules[m].at(p));
      if (!own.insert(slot).second) {
        std::ostringstream os;
        os << sys.module(m).name << ' ' << p << " collides with another "
           << sys.module(m).name << " computation at cell " << slot.first
           << ", tick " << slot.second;
        add(Violation::Kind::kConflict, os.str());
        return;
      }
      const IntVec key = sys.fold_key() ? sys.fold_key()->apply(p) : p;
      const auto [it, inserted] = slots.emplace(slot, std::make_pair(m, key));
      if (!inserted && it->second.first != m &&
          (!sys.fold_key() || it->second.second != key)) {
        std::ostringstream os;
        os << sys.module(m).name << ' ' << p << " shares cell " << slot.first
           << ", tick " << slot.second << " with module '"
           << sys.module(it->second.first).name
           << "' serving a different fold key";
        add(Violation::Kind::kConflict, os.str());
      }
    });

    // Local dependences: causality and routability.
    for (const auto& dep : sys.module(m).local_deps) {
      const i64 slack = schedules[m].slack(dep.vector);
      if (slack <= 0) {
        std::ostringstream os;
        os << sys.module(m).name << " variable " << dep.variable
           << " has nonpositive slack " << slack;
        add(Violation::Kind::kCausality, os.str());
        continue;
      }
      ++report.local_instances;
      const IntVec disp = spaces[m] * dep.vector;
      if (!route_displacement(net, disp, slack)) {
        std::ostringstream os;
        os << sys.module(m).name << " variable " << dep.variable
           << " cannot travel " << disp << " in " << slack << " tick(s)";
        add(Violation::Kind::kUnroutable, os.str());
      }
    }
  }

  // Global statements: causality and routability at every guard point.
  for (const auto& g : sys.globals()) {
    g.guard.for_each([&](const IntVec& p) {
      ++report.global_instances;
      const IntVec q = g.producer_point.apply(p);
      const i64 slack = checked_sub(schedules[g.consumer].at(p),
                                    schedules[g.producer].at(q));
      const bool causal = g.allow_equal_time ? slack >= 0 : slack > 0;
      if (!causal) {
        std::ostringstream os;
        os << g.name << " at " << p << ": consumer fires at slack " << slack
           << " relative to its producer";
        add(Violation::Kind::kCausality, os.str());
        return;
      }
      const IntVec disp = spaces[g.consumer] * p - spaces[g.producer] * q;
      if (!route_displacement(net, disp, slack)) {
        std::ostringstream os;
        os << g.name << " at " << p << ": displacement " << disp
           << " unreachable in " << slack << " tick(s)";
        add(Violation::Kind::kUnroutable, os.str());
      }
    });
  }
  return report;
}

}  // namespace nusys
