#include "verify/module_spacetime.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <tuple>
#include <vector>

#include "space/routing.hpp"

namespace nusys {

std::size_t ModuleVerificationReport::count(Violation::Kind kind) const {
  std::size_t c = 0;
  for (const auto& v : violations) {
    if (v.kind == kind) ++c;
  }
  return c;
}

ModuleVerificationReport verify_module_design(
    const ModuleSystem& sys, const std::vector<LinearSchedule>& schedules,
    const std::vector<IntMat>& spaces, const Interconnect& net) {
  sys.validate();
  NUSYS_REQUIRE(schedules.size() == sys.module_count() &&
                    spaces.size() == sys.module_count(),
                "verify_module_design: one schedule and one space per module");

  ModuleVerificationReport report;
  const auto add = [&](Violation::Kind kind, const std::string& detail) {
    report.violations.push_back({kind, detail});
  };

  // Per-module exclusivity + cross-module fold rule. All computations are
  // collected and sorted by (tick, cell, module, point) before conflicts
  // are reported, so the FIRST divergence tick leads the list
  // deterministically regardless of module order or domain iteration.
  struct SlotEntry {
    i64 tick;
    IntVec cell;
    std::size_t module;
    IntVec point;
    IntVec key;
  };
  std::vector<SlotEntry> entries;
  for (std::size_t m = 0; m < sys.module_count(); ++m) {
    NUSYS_REQUIRE(spaces[m].rows() == net.label_dim() &&
                      spaces[m].cols() == sys.dim(),
                  "verify_module_design: space shape mismatch");
    sys.module(m).domain.for_each([&](const IntVec& p) {
      ++report.computations_checked;
      entries.push_back({schedules[m].at(p), spaces[m] * p, m, p,
                         sys.fold_key() ? sys.fold_key()->apply(p) : p});
    });
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const SlotEntry& a, const SlotEntry& b) {
                     return std::tie(a.tick, a.cell, a.module, a.point) <
                            std::tie(b.tick, b.cell, b.module, b.point);
                   });
  for (std::size_t lo = 0; lo < entries.size();) {
    std::size_t hi = lo + 1;
    while (hi < entries.size() && entries[hi].tick == entries[lo].tick &&
           entries[hi].cell == entries[lo].cell) {
      ++hi;
    }
    // entries[lo] is the slot's representative: the lex-least point of the
    // lowest-indexed module, matching what first-insertion order produced.
    const SlotEntry& rep = entries[lo];
    std::set<std::size_t> modules_seen = {rep.module};
    for (std::size_t i = lo + 1; i < hi; ++i) {
      const SlotEntry& e = entries[i];
      if (!modules_seen.insert(e.module).second) {
        std::ostringstream os;
        os << sys.module(e.module).name << ' ' << e.point
           << " collides with another " << sys.module(e.module).name
           << " computation at cell " << e.cell << ", tick " << e.tick;
        add(Violation::Kind::kConflict, os.str());
      } else if (e.module != rep.module &&
                 (!sys.fold_key() || e.key != rep.key)) {
        std::ostringstream os;
        os << sys.module(e.module).name << ' ' << e.point << " shares cell "
           << e.cell << ", tick " << e.tick << " with module '"
           << sys.module(rep.module).name << "' serving a different fold key";
        add(Violation::Kind::kConflict, os.str());
      }
    }
    lo = hi;
  }

  for (std::size_t m = 0; m < sys.module_count(); ++m) {
    // Local dependences: causality and routability.
    for (const auto& dep : sys.module(m).local_deps) {
      const i64 slack = schedules[m].slack(dep.vector);
      if (slack <= 0) {
        std::ostringstream os;
        os << sys.module(m).name << " variable " << dep.variable
           << " has nonpositive slack " << slack;
        add(Violation::Kind::kCausality, os.str());
        continue;
      }
      ++report.local_instances;
      const IntVec disp = spaces[m] * dep.vector;
      if (!route_displacement(net, disp, slack)) {
        std::ostringstream os;
        os << sys.module(m).name << " variable " << dep.variable
           << " cannot travel " << disp << " in " << slack << " tick(s)";
        add(Violation::Kind::kUnroutable, os.str());
      }
    }
  }

  // Global statements: causality and routability at every guard point.
  for (const auto& g : sys.globals()) {
    g.guard.for_each([&](const IntVec& p) {
      ++report.global_instances;
      const IntVec q = g.producer_point.apply(p);
      const i64 slack = checked_sub(schedules[g.consumer].at(p),
                                    schedules[g.producer].at(q));
      const bool causal = g.allow_equal_time ? slack >= 0 : slack > 0;
      if (!causal) {
        std::ostringstream os;
        os << g.name << " at " << p << ": consumer fires at slack " << slack
           << " relative to its producer";
        add(Violation::Kind::kCausality, os.str());
        return;
      }
      const IntVec disp = spaces[g.consumer] * p - spaces[g.producer] * q;
      if (!route_displacement(net, disp, slack)) {
        std::ostringstream os;
        os << g.name << " at " << p << ": displacement " << disp
           << " unreachable in " << slack << " tick(s)";
        add(Violation::Kind::kUnroutable, os.str());
      }
    });
  }
  return report;
}

}  // namespace nusys
