// Exhaustive space-time verification of a synthesized design.
//
// The searches in schedule/ and space/ enforce the paper's conditions
// algebraically (T·d > 0, S·D = Δ·K, non-singular Π). This module
// re-checks a design *extensionally*, computation by computation, which is
// how one validates a design produced by any means (hand-derived, searched,
// or imported):
//   * causality  — every operand of every computation is produced at a
//     strictly earlier tick;
//   * exclusivity — no two computations share a (processor, tick);
//   * routability — every produced->consumed value can physically travel
//     between its cells through Δ links within its time slack;
//   * link audit  — with ALAP forwarding, no (link, variable) wire carries
//     two values in one tick.
// The report lists every violation instead of stopping at the first, so a
// failing design can be diagnosed in one pass.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "ir/recurrence.hpp"
#include "schedule/timing.hpp"
#include "space/interconnect.hpp"

namespace nusys {

/// One discovered violation.
struct Violation {
  enum class Kind { kCausality, kConflict, kUnroutable, kLinkOverload };
  Kind kind;
  std::string detail;
};

/// Outcome of verifying one design.
struct VerificationReport {
  std::vector<Violation> violations;
  std::size_t computations_checked = 0;
  std::size_t values_routed = 0;

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
  [[nodiscard]] std::size_t count(Violation::Kind kind) const;
};

/// Verifies (timing, space) for `recurrence` on `net` by enumerating every
/// computation and every dependence instance in the domain.
[[nodiscard]] VerificationReport verify_design(
    const CanonicRecurrence& recurrence, const LinearSchedule& timing,
    const IntMat& space, const Interconnect& net);

std::ostream& operator<<(std::ostream& os, const VerificationReport& r);

}  // namespace nusys
