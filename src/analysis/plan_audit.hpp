// Static auditing of compiled wavefront and tile plans.
//
// The compiled artifacts that carry all the performance — uniform
// wavefront plans (designs/uniform_plan.hpp), DP plans
// (designs/dp_plan.hpp) and tile plans (partition/tile_plan.hpp) — were
// validated only by differential execution against the interpretive
// oracle: extensional, instance-bound and far too slow for the
// cache-admission path. The auditor closes that gap the same way PR 5's
// analyzer did for designs: it re-derives every placement and wiring
// fact directly from the *source mapping* (rec, T, S, Δ — the paper's
// own objects) and checks the compiled structure against it, emitting
// one ObligationRecord per condition with a deterministic id, so a
// violated plan names exactly which invariant broke and where.
//
// Obligation catalogue (ids are `plan/<label>/<suffix>`, tile plans use
// `tile/<label>/<suffix>`):
//
//   uniform   front-order      fronts contiguous over [0, count), ticks
//                              strictly ascending, every op on its
//                              front's tick T(p)
//             front-antichain  T·d >= 1 for every dependence — no two
//                              ops of one front can depend on each other
//             domain-coverage  points[] is exactly the domain: exhaustive
//                              and duplicate-free
//             consumer-links   consumer[] agrees with the dependence
//                              matrix: every in-domain successor linked,
//                              kNoConsumer exactly on domain exits
//             route-<var>      S·d = Δ·k within the slack T·d (eq. (3)),
//                              route witness attached
//             slot-alias       column-major slot layout is alias-free:
//                              no two producers scatter to one
//                              (var, position) slot
//             boundary         boundary list complete, duplicate-free and
//                              disjoint from scatter targets
//             byte-accounting  size fields, max_front, first/last tick,
//                              cell/route-hop counts and plan_bytes()
//                              match recomputed element counts
//
//   dp        op-coverage      ops[] replays the closed-form enumeration;
//                              order is a permutation
//             front-order      as above, over recomputed (schedule,
//                              cluster, period) ticks
//             fold-discipline  ops folded onto one (cell, tick) share
//                              (instance, i, j); max_folded_ops matches
//             consumer-links   def-before-use: every operand slot is
//                              written (prefill or producer) before the
//                              op that reads it executes
//             slot-alias       every slot has exactly one writer and one
//                              reader; output CSR well-formed
//             boundary         prefill descriptors in range and
//                              duplicate-free
//             byte-accounting  as above
//
//   tile      coverage         per-point arrays sized and in range
//             epoch-disjoint   per-tile tick segments disjoint,
//                              ascending, and containing their points
//             tile-order       inter-tile dependences only go forward in
//                              execution order (the Kahn order is the
//                              acyclicity witness)
//             classification   kind[] and the buffered list match the
//                              recomputed boundary/local/buffered split
//             tile-depth       the reuse-vs-refeed ledger matches the
//                              configured buffer depth
//             buffer-ledger    buffered-value counts, edges, buffer
//                              bytes and the residency high-water match
//             window           |window| <= P·Q, duplicate-free, and
//                              every placed cell inside it
//
// Every obligation is certified (kCertified) or violated (kViolated)
// with a counterexample in `detail`; the auditor never enumerates
// problem instances, only the plan and the domain, so auditing costs a
// small multiple of plan construction — cheap enough to run at cache
// admission (NUSYS_AUDIT_PLANS=1, systolic/plan_cache.hpp).
#pragma once

#include <string>

#include "analysis/certificates.hpp"
#include "designs/dp_plan.hpp"
#include "designs/uniform_plan.hpp"
#include "partition/tile_plan.hpp"

namespace nusys {

/// The verdict of one plan audit: a DesignCertificate whose obligations
/// are the plan's structural invariants.
struct PlanAuditReport {
  DesignCertificate certificate;
  double wall_seconds = 0.0;

  /// True when no obligation is violated.
  [[nodiscard]] bool ok() const;
  [[nodiscard]] std::size_t certified() const;
  [[nodiscard]] std::size_t violated() const;

  /// "id: detail" of the first violated obligation; empty when ok().
  [[nodiscard]] std::string first_violation() const;
  [[nodiscard]] std::string summary() const;
  [[nodiscard]] JsonValue to_json() const;
};

/// Audits a compiled uniform plan against its source mapping. `label`
/// names the plan in obligation ids ("conv n=10", ...).
[[nodiscard]] PlanAuditReport audit_uniform_plan(
    const CompiledUniformPlan& plan, const CanonicRecurrence& rec,
    const LinearSchedule& timing, const IntMat& space, const Interconnect& net,
    const std::string& label);

/// Audits a compiled DP plan against its source design and pipelining
/// period (plan.n / plan.instances are taken from the plan and
/// cross-checked).
[[nodiscard]] PlanAuditReport audit_dp_plan(const detail::CompiledDPPlan& plan,
                                            const DPArrayDesign& design,
                                            i64 period,
                                            const std::string& label);

/// Audits a tile plan against the flat mapping it partitions.
[[nodiscard]] PlanAuditReport audit_tile_plan(
    const UniformTilePlan& plan, const CanonicRecurrence& rec,
    const LinearSchedule& timing, const IntMat& space, const Interconnect& net,
    const std::string& label);

}  // namespace nusys
