// Static design analysis: the paper's conditions proven, not enumerated.
//
// The extensional verifiers (verify/spacetime.hpp,
// verify/module_spacetime.hpp) walk every index point — O(|domain|) and
// exploding with problem size. Every condition they check is affine, so
// each can instead be discharged over the domain *facets* in time
// independent of the domain size:
//
//   causality     T·d > 0 and the A1..A5 firing margins — Farkas lower
//                 bounds over the guard polytope, lifted to the integer
//                 minimum by integrality (analysis/farkas.hpp);
//   exclusivity   [T; S] injective on the lattice of domain differences —
//                 a nonzero subdeterminant on the equality-kernel basis
//                 (linalg/hermite.hpp), plus a rowspan certificate for the
//                 cross-module fold rule;
//   routability   S·D = Δ·K witnesses with Σk bounded by the certified
//                 slack minimum.
//
// Any obligation the certificates cannot discharge falls back to exact
// (early-exit) enumeration of just that obligation, so the analyzer's
// verdict always agrees with the extensional verifier — certificates make
// it fast, enumeration keeps it honest. AnalysisReport carries the full
// certificate; check_*_certificate re-validates one against a design by
// integer substitution alone.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/certificates.hpp"
#include "ir/recurrence.hpp"
#include "modules/module_system.hpp"
#include "schedule/timing.hpp"
#include "space/interconnect.hpp"
#include "support/json.hpp"
#include "verify/spacetime.hpp"

namespace nusys {

struct AnalyzeOptions {
  /// Leaf budget for integer-witness searches (anchoring constant
  /// displacements). Never affects the verdict, only which obligations
  /// need the enumeration fallback.
  std::size_t witness_budget = 4096;
  /// Also run the extensional verifier and cross-check the verdict; a
  /// disagreement is reported as a violation (and would be a bug).
  bool paranoid = false;
};

/// Outcome of one static analysis.
struct AnalysisReport {
  DesignCertificate certificate;
  std::vector<Violation> violations;  ///< Same kinds as the verifiers.
  std::size_t certified = 0;   ///< Obligations proven by certificate.
  std::size_t enumerated = 0;  ///< Obligations that needed enumeration.
  double wall_seconds = 0.0;

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
  [[nodiscard]] std::size_t count(Violation::Kind kind) const;
  /// One-paragraph human summary ("12 obligations: 12 certified, ...").
  [[nodiscard]] std::string summary() const;
  [[nodiscard]] JsonValue to_json() const;
};

/// Statically analyzes a module-system design; verdict-equivalent to
/// verify_module_design.
[[nodiscard]] AnalysisReport analyze_module_design(
    const ModuleSystem& sys, const std::vector<LinearSchedule>& schedules,
    const std::vector<IntMat>& spaces, const Interconnect& net,
    const AnalyzeOptions& options = {});

/// Statically analyzes a uniform design; verdict-equivalent to
/// verify_design (including the ALAP wire audit).
[[nodiscard]] AnalysisReport analyze_design(
    const CanonicRecurrence& recurrence, const LinearSchedule& timing,
    const IntMat& space, const Interconnect& net,
    const AnalyzeOptions& options = {});

/// Outcome of re-checking a stored certificate against a design.
struct CertificateCheck {
  bool ok = false;
  std::string error;  ///< First failure, empty when ok.
};

/// Re-validates a certificate against the design it claims to prove:
/// recomputes each obligation's ground facts and checks the stored proof
/// by integer substitution (enumerated obligations are re-enumerated).
/// Tampered multipliers, kernels or routes are rejected.
[[nodiscard]] CertificateCheck check_module_certificate(
    const ModuleSystem& sys, const std::vector<LinearSchedule>& schedules,
    const std::vector<IntMat>& spaces, const Interconnect& net,
    const DesignCertificate& certificate);

[[nodiscard]] CertificateCheck check_design_certificate(
    const CanonicRecurrence& recurrence, const LinearSchedule& timing,
    const IntMat& space, const Interconnect& net,
    const DesignCertificate& certificate);

/// Drop-in static replacements for the enumerative cache-revalidation
/// oracles (modules/module_schedule.hpp schedules_satisfy and
/// modules/module_space.hpp spaces_satisfy): identical verdicts,
/// certificate-first, per-obligation enumeration fallback. Setting
/// NUSYS_PARANOID_REVALIDATE=1 in the environment routes both straight to
/// the enumerative oracles instead.
[[nodiscard]] bool static_schedules_satisfy(
    const ModuleSystem& sys, const std::vector<LinearSchedule>& schedules);
[[nodiscard]] bool static_spaces_satisfy(
    const ModuleSystem& sys, const std::vector<LinearSchedule>& schedules,
    const std::vector<IntMat>& spaces, const Interconnect& net);

/// Process-wide analysis observability, surfaced in the service stats.
struct AnalysisCounters {
  std::atomic<std::uint64_t> designs_analyzed{0};
  std::atomic<std::uint64_t> obligations_certified{0};
  std::atomic<std::uint64_t> obligations_enumerated{0};
  std::atomic<std::uint64_t> static_revalidations{0};
  std::atomic<std::uint64_t> oracle_revalidations{0};
};

[[nodiscard]] AnalysisCounters& analysis_counters();
[[nodiscard]] JsonValue analysis_counters_json();

}  // namespace nusys
