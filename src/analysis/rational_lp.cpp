#include "analysis/rational_lp.hpp"

#include <cstddef>

#include "support/errors.hpp"

namespace nusys {

namespace {

/// Simplex tableau: `rows` is m x (columns + 1) with the rhs in the last
/// entry of each row; `basis[r]` names the column basic in row r.
struct Tableau {
  FracMat rows;
  std::vector<std::size_t> basis;
  std::size_t columns = 0;
};

void pivot(Tableau& t, std::size_t row, std::size_t col) {
  const Fraction p = t.rows[row][col];
  for (auto& v : t.rows[row]) v /= p;
  for (std::size_t r = 0; r < t.rows.size(); ++r) {
    if (r == row || t.rows[r][col].is_zero()) continue;
    const Fraction f = t.rows[r][col];
    for (std::size_t c = 0; c <= t.columns; ++c) {
      t.rows[r][c] -= f * t.rows[row][c];
    }
  }
  t.basis[row] = col;
}

/// Runs Bland's-rule simplex maximizing `cost` over the columns with
/// `allowed[j]` set. Terminates (no cycling); returns kOptimal or
/// kUnbounded.
LpStatus run_simplex(Tableau& t, const FracVec& cost,
                     const std::vector<bool>& allowed) {
  for (;;) {
    // Reduced costs from scratch each round: the tableaus here have a
    // handful of rows, so clarity beats carrying an objective row.
    std::size_t entering = t.columns;
    for (std::size_t j = 0; j < t.columns && entering == t.columns; ++j) {
      if (!allowed[j]) continue;
      Fraction reduced = cost[j];
      for (std::size_t r = 0; r < t.rows.size(); ++r) {
        reduced -= cost[t.basis[r]] * t.rows[r][j];
      }
      if (reduced > Fraction(0)) entering = j;
    }
    if (entering == t.columns) return LpStatus::kOptimal;

    std::size_t leaving = t.rows.size();
    Fraction best_ratio;
    for (std::size_t r = 0; r < t.rows.size(); ++r) {
      if (t.rows[r][entering] <= Fraction(0)) continue;
      const Fraction ratio = t.rows[r][t.columns] / t.rows[r][entering];
      if (leaving == t.rows.size() || ratio < best_ratio ||
          (ratio == best_ratio && t.basis[r] < t.basis[leaving])) {
        leaving = r;
        best_ratio = ratio;
      }
    }
    if (leaving == t.rows.size()) return LpStatus::kUnbounded;
    pivot(t, leaving, entering);
  }
}

}  // namespace

LpResult solve_standard_lp(const FracMat& a, const FracVec& b,
                           const FracVec& objective) {
  const std::size_t m = a.size();
  const std::size_t n = objective.size();
  NUSYS_REQUIRE(b.size() == m, "solve_standard_lp: rhs arity");
  for (const auto& row : a) {
    NUSYS_REQUIRE(row.size() == n, "solve_standard_lp: row arity");
  }

  // Phase 1: one artificial per row (rhs flipped nonnegative first),
  // maximize minus their sum; feasible iff the optimum is zero.
  Tableau t;
  t.columns = n + m;
  t.rows.assign(m, FracVec(t.columns + 1));
  t.basis.resize(m);
  for (std::size_t r = 0; r < m; ++r) {
    const bool flip = b[r] < Fraction(0);
    for (std::size_t c = 0; c < n; ++c) {
      t.rows[r][c] = flip ? -a[r][c] : a[r][c];
    }
    t.rows[r][n + r] = Fraction(1);
    t.rows[r][t.columns] = flip ? -b[r] : b[r];
    t.basis[r] = n + r;
  }
  FracVec phase1_cost(t.columns);
  for (std::size_t j = n; j < t.columns; ++j) phase1_cost[j] = Fraction(-1);
  std::vector<bool> all_columns(t.columns, true);
  run_simplex(t, phase1_cost, all_columns);  // Bounded below by -Σ|b|.

  Fraction infeasibility;
  for (std::size_t r = 0; r < m; ++r) {
    if (t.basis[r] >= n) infeasibility += t.rows[r][t.columns];
  }
  LpResult result;
  if (!infeasibility.is_zero()) {
    result.status = LpStatus::kInfeasible;
    return result;
  }

  // Drive leftover artificials out of the basis; a row where no real
  // column can pivot is a redundant constraint and is dropped.
  std::vector<bool> real_columns(t.columns);
  for (std::size_t j = 0; j < n; ++j) real_columns[j] = true;
  for (std::size_t r = 0; r < t.rows.size();) {
    if (t.basis[r] < n) {
      ++r;
      continue;
    }
    std::size_t col = n;
    for (std::size_t j = 0; j < n && col == n; ++j) {
      if (!t.rows[r][j].is_zero()) col = j;
    }
    if (col < n) {
      pivot(t, r, col);
      ++r;
    } else {
      t.rows.erase(t.rows.begin() + static_cast<std::ptrdiff_t>(r));
      t.basis.erase(t.basis.begin() + static_cast<std::ptrdiff_t>(r));
    }
  }

  // Phase 2 over the real columns only.
  FracVec phase2_cost(t.columns);
  for (std::size_t j = 0; j < n; ++j) phase2_cost[j] = objective[j];
  if (run_simplex(t, phase2_cost, real_columns) == LpStatus::kUnbounded) {
    result.status = LpStatus::kUnbounded;
    return result;
  }

  result.status = LpStatus::kOptimal;
  result.solution.assign(n, Fraction(0));
  for (std::size_t r = 0; r < t.rows.size(); ++r) {
    if (t.basis[r] < n) result.solution[t.basis[r]] = t.rows[r][t.columns];
  }
  for (std::size_t j = 0; j < n; ++j) {
    result.objective_value += objective[j] * result.solution[j];
  }
  return result;
}

std::optional<FracVec> solve_rational_system(const FracMat& a,
                                             const FracVec& b) {
  const std::size_t m = a.size();
  NUSYS_REQUIRE(b.size() == m, "solve_rational_system: rhs arity");
  const std::size_t n = m == 0 ? 0 : a.front().size();
  for (const auto& row : a) {
    NUSYS_REQUIRE(row.size() == n, "solve_rational_system: row arity");
  }

  FracMat rows(m, FracVec(n + 1));
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < n; ++c) rows[r][c] = a[r][c];
    rows[r][n] = b[r];
  }

  std::vector<std::size_t> pivot_col;
  std::size_t rank = 0;
  for (std::size_t c = 0; c < n && rank < m; ++c) {
    std::size_t p = rank;
    while (p < m && rows[p][c].is_zero()) ++p;
    if (p == m) continue;
    std::swap(rows[p], rows[rank]);
    const Fraction inv = rows[rank][c];
    for (auto& v : rows[rank]) v /= inv;
    for (std::size_t r = 0; r < m; ++r) {
      if (r == rank || rows[r][c].is_zero()) continue;
      const Fraction f = rows[r][c];
      for (std::size_t k = c; k <= n; ++k) rows[r][k] -= f * rows[rank][k];
    }
    pivot_col.push_back(c);
    ++rank;
  }
  for (std::size_t r = rank; r < m; ++r) {
    if (!rows[r][n].is_zero()) return std::nullopt;  // 0 == nonzero.
  }

  FracVec x(n, Fraction(0));
  for (std::size_t r = 0; r < rank; ++r) x[pivot_col[r]] = rows[r][n];
  return x;
}

}  // namespace nusys
