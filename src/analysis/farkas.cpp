#include "analysis/farkas.hpp"

#include "support/errors.hpp"

namespace nusys {

namespace {

/// The dual constraint matrix: one row per index dimension, one column per
/// inequality, entry = that inequality's coefficient on the dimension.
FracMat dual_matrix(const std::vector<AffineInequality>& inequalities,
                    std::size_t dim) {
  FracMat a(dim, FracVec(inequalities.size()));
  for (std::size_t i = 0; i < inequalities.size(); ++i) {
    NUSYS_REQUIRE(inequalities[i].coeffs.dim() == dim,
                  "farkas: inequality dimension mismatch");
    for (std::size_t k = 0; k < dim; ++k) {
      a[k][i] = Fraction(inequalities[i].coeffs[k]);
    }
  }
  return a;
}

/// Least common multiple of every multiplier denominator (and `extra`),
/// for the scaled-integer substitution. Throws on i64 overflow.
i64 common_scale(const FracVec& multipliers, i64 extra) {
  i64 scale = extra;
  for (const auto& m : multipliers) {
    const i64 g = gcd64(scale, m.den());
    scale = checked_mul(scale / g, m.den());
  }
  return scale;
}

}  // namespace

std::optional<FarkasBound> prove_lower_bound(
    const std::vector<AffineInequality>& inequalities, const IntVec& target,
    i64 target_constant) {
  const std::size_t dim = target.dim();
  FracVec rhs(dim);
  for (std::size_t k = 0; k < dim; ++k) rhs[k] = Fraction(target[k]);
  FracVec objective(inequalities.size());
  for (std::size_t i = 0; i < inequalities.size(); ++i) {
    objective[i] = Fraction(checked_mul(inequalities[i].constant, -1));
  }
  const LpResult lp =
      solve_standard_lp(dual_matrix(inequalities, dim), rhs, objective);
  if (lp.status != LpStatus::kOptimal) return std::nullopt;
  FarkasBound cert;
  cert.multipliers = lp.solution;
  cert.bound = Fraction(target_constant) + lp.objective_value;
  return cert;
}

std::optional<FarkasEmpty> prove_empty(
    const std::vector<AffineInequality>& inequalities) {
  if (inequalities.empty()) return std::nullopt;
  const std::size_t dim = inequalities.front().coeffs.dim();
  // Feasibility system: Σ λ_i a_i = 0 and Σ λ_i b_i = -1, λ >= 0.
  FracMat a = dual_matrix(inequalities, dim);
  FracVec constants(inequalities.size());
  for (std::size_t i = 0; i < inequalities.size(); ++i) {
    constants[i] = Fraction(inequalities[i].constant);
  }
  a.push_back(std::move(constants));
  FracVec rhs(dim + 1);
  rhs[dim] = Fraction(-1);
  const LpResult lp =
      solve_standard_lp(a, rhs, FracVec(inequalities.size()));
  if (lp.status != LpStatus::kOptimal) return std::nullopt;
  return FarkasEmpty{lp.solution};
}

bool check_lower_bound(const std::vector<AffineInequality>& inequalities,
                       const IntVec& target, i64 target_constant,
                       const FarkasBound& certificate) {
  if (certificate.multipliers.size() != inequalities.size()) return false;
  try {
    for (const auto& m : certificate.multipliers) {
      if (m < Fraction(0)) return false;
    }
    const i64 scale =
        common_scale(certificate.multipliers, certificate.bound.den());
    std::vector<i64> scaled(inequalities.size());
    for (std::size_t i = 0; i < inequalities.size(); ++i) {
      const auto& m = certificate.multipliers[i];
      scaled[i] = checked_mul(m.num(), scale / m.den());
    }
    // Coefficient identity:  Σ λ_i a_i == target, scaled by `scale`.
    for (std::size_t k = 0; k < target.dim(); ++k) {
      i64 sum = 0;
      for (std::size_t i = 0; i < inequalities.size(); ++i) {
        if (inequalities[i].coeffs.dim() != target.dim()) return false;
        sum = checked_add(sum,
                          checked_mul(scaled[i], inequalities[i].coeffs[k]));
      }
      if (sum != checked_mul(scale, target[k])) return false;
    }
    // Bound check:  bound <= target_constant - Σ λ_i b_i.
    i64 offset = checked_mul(scale, target_constant);
    for (std::size_t i = 0; i < inequalities.size(); ++i) {
      offset =
          checked_sub(offset, checked_mul(scaled[i], inequalities[i].constant));
    }
    const i64 scaled_bound = checked_mul(
        certificate.bound.num(), scale / certificate.bound.den());
    return scaled_bound <= offset;
  } catch (const Error&) {
    return false;
  }
}

bool check_empty(const std::vector<AffineInequality>& inequalities,
                 const FarkasEmpty& certificate) {
  if (certificate.multipliers.size() != inequalities.size() ||
      inequalities.empty()) {
    return false;
  }
  const std::size_t dim = inequalities.front().coeffs.dim();
  try {
    for (const auto& m : certificate.multipliers) {
      if (m < Fraction(0)) return false;
    }
    const i64 scale = common_scale(certificate.multipliers, 1);
    std::vector<i64> scaled(inequalities.size());
    for (std::size_t i = 0; i < inequalities.size(); ++i) {
      const auto& m = certificate.multipliers[i];
      scaled[i] = checked_mul(m.num(), scale / m.den());
    }
    for (std::size_t k = 0; k < dim; ++k) {
      i64 sum = 0;
      for (std::size_t i = 0; i < inequalities.size(); ++i) {
        if (inequalities[i].coeffs.dim() != dim) return false;
        sum = checked_add(sum,
                          checked_mul(scaled[i], inequalities[i].coeffs[k]));
      }
      if (sum != 0) return false;
    }
    i64 sum = 0;
    for (std::size_t i = 0; i < inequalities.size(); ++i) {
      sum = checked_add(sum, checked_mul(scaled[i], inequalities[i].constant));
    }
    return sum < 0;
  } catch (const Error&) {
    return false;
  }
}

i64 ceil_fraction(const Fraction& f) { return ceil_div(f.num(), f.den()); }

}  // namespace nusys
