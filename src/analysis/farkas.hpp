// Farkas certificates: affine bounds over a polytope, with receipts.
//
// To prove  t·x + t0 >= bound  for every point of  {x | a_i·x + b_i >= 0},
// it suffices to exhibit multipliers λ_i >= 0 with  Σ λ_i a_i = t  and
// bound <= t0 - Σ λ_i b_i: then t·x + t0 = Σ λ_i (a_i·x + b_i) + (t0 -
// Σ λ_i b_i) >= bound termwise. The multipliers come out of the dual LP
// (analysis/rational_lp.hpp), so the proved bound is the exact rational
// minimum; checking a certificate needs no LP — just scaled-integer
// substitution, which is what check_lower_bound / check_empty do.
//
// Because every target here has integer coefficients, its value at integer
// points is an integer, so the *integer* minimum is >= ceil(bound) — the
// lift the analyzer uses to certify strict inequalities like T·d > 0.
#pragma once

#include <optional>
#include <vector>

#include "analysis/polytope.hpp"
#include "analysis/rational_lp.hpp"

namespace nusys {

/// Proof that  target·x + target_constant >= bound  on a polytope.
struct FarkasBound {
  FracVec multipliers;  ///< One λ_i >= 0 per inequality.
  Fraction bound;       ///< The certified lower bound.

  friend bool operator==(const FarkasBound& a, const FarkasBound& b) = default;
};

/// Proof that a polytope has no rational point:  Σ λ_i (a_i·x + b_i) is a
/// negative constant even though every term is required nonnegative.
struct FarkasEmpty {
  FracVec multipliers;

  friend bool operator==(const FarkasEmpty& a, const FarkasEmpty& b) = default;
};

/// Finds the exact rational minimum of  target·x + target_constant  over
/// the inequalities' polytope together with its Farkas multipliers.
/// nullopt when the polytope is empty (try prove_empty) or the relaxation
/// is unbounded below.
[[nodiscard]] std::optional<FarkasBound> prove_lower_bound(
    const std::vector<AffineInequality>& inequalities, const IntVec& target,
    i64 target_constant);

/// Finds an emptiness certificate for the inequalities' polytope; nullopt
/// when the polytope has a rational point.
[[nodiscard]] std::optional<FarkasEmpty> prove_empty(
    const std::vector<AffineInequality>& inequalities);

/// Re-checks a bound certificate by scaled-integer substitution (no LP,
/// no rational pivoting): multipliers nonnegative, coefficient identity
/// exact, bound not overstated. False on any mismatch or i64 overflow.
[[nodiscard]] bool check_lower_bound(
    const std::vector<AffineInequality>& inequalities, const IntVec& target,
    i64 target_constant, const FarkasBound& certificate);

/// Re-checks an emptiness certificate the same way.
[[nodiscard]] bool check_empty(
    const std::vector<AffineInequality>& inequalities,
    const FarkasEmpty& certificate);

/// ceil(bound): the integrality lift for integer-valued targets.
[[nodiscard]] i64 ceil_fraction(const Fraction& f);

}  // namespace nusys
