#include "analysis/polytope.hpp"

#include <algorithm>

#include "linalg/hermite.hpp"
#include "linalg/mat.hpp"

namespace nusys {

namespace {

/// coeffs of `-expr` (componentwise negation).
IntVec negated(const IntVec& v) { return -v; }

/// True when `a >= 0` and `b >= 0` together force equality: b == -a.
bool opposite(const AffineExpr& a, const AffineExpr& b) {
  return a.coeffs() == negated(b.coeffs()) &&
         a.constant_term() == checked_mul(b.constant_term(), -1);
}

}  // namespace

DomainFacets domain_facets(const IndexDomain& domain) {
  DomainFacets facets;
  facets.dim = domain.dim();
  const std::size_t n = domain.dim();

  for (std::size_t axis = 0; axis < n; ++axis) {
    const DimBounds& b = domain.bounds(axis);
    // x_axis - lower(x) >= 0.
    IntVec lo = negated(b.lower.coeffs());
    lo[axis] = checked_add(lo[axis], 1);
    facets.inequalities.push_back(
        {lo, checked_mul(b.lower.constant_term(), -1)});
    // upper(x) - x_axis >= 0.
    IntVec hi = b.upper.coeffs();
    hi[axis] = checked_sub(hi[axis], 1);
    facets.inequalities.push_back({hi, b.upper.constant_term()});
    // A thin axis (lower == upper) pins the domain to a hyperplane.
    if (b.lower == b.upper) {
      facets.equalities.push_back(
          {lo, checked_mul(b.lower.constant_term(), -1)});
    }
  }

  const auto& extras = domain.constraints();
  std::vector<bool> paired(extras.size(), false);
  for (std::size_t i = 0; i < extras.size(); ++i) {
    facets.inequalities.push_back(
        {extras[i].coeffs(), extras[i].constant_term()});
    if (paired[i]) continue;
    for (std::size_t j = i + 1; j < extras.size(); ++j) {
      if (!paired[j] && opposite(extras[i], extras[j])) {
        facets.equalities.push_back(
            {extras[i].coeffs(), extras[i].constant_term()});
        paired[i] = paired[j] = true;
        break;
      }
    }
  }
  return facets;
}

std::vector<IntVec> equality_kernel_basis(const DomainFacets& facets) {
  if (facets.equalities.empty()) {
    std::vector<IntVec> basis;
    basis.reserve(facets.dim);
    for (std::size_t k = 0; k < facets.dim; ++k) {
      IntVec e(facets.dim);
      e[k] = 1;
      basis.push_back(std::move(e));
    }
    return basis;
  }
  std::vector<IntVec> rows;
  rows.reserve(facets.equalities.size());
  for (const auto& eq : facets.equalities) rows.push_back(eq.coeffs);
  const auto sol =
      solve_diophantine(IntMat::from_rows(rows), IntVec(rows.size()));
  // E·u = 0 always admits u = 0, so the solve cannot fail.
  NUSYS_REQUIRE(sol.has_value(), "equality_kernel_basis: homogeneous solve");
  return sol->kernel;
}

WitnessSearch find_integer_point(const IndexDomain& domain,
                                 std::size_t budget) {
  WitnessSearch out;
  std::size_t visited = 0;
  IntVec point(domain.dim());
  auto recurse = [&](auto&& self, std::size_t axis) -> bool {
    if (out.point || visited >= budget) return false;
    if (axis == domain.dim()) {
      ++visited;
      for (const auto& c : domain.constraints()) {
        if (c.eval(point) < 0) return true;
      }
      out.point = point;
      return false;
    }
    const i64 lo = domain.bounds(axis).lower.eval(point);
    const i64 hi = domain.bounds(axis).upper.eval(point);
    for (i64 v = lo; v <= hi; ++v) {
      point[axis] = v;
      if (!self(self, axis + 1)) {
        point[axis] = 0;
        return false;
      }
    }
    point[axis] = 0;
    return true;
  };
  out.exhausted = recurse(recurse, 0) && !out.point;
  return out;
}

}  // namespace nusys
