// Machine-checkable design certificates.
//
// The analyzer (analysis/analyzer.hpp) discharges one *obligation* per
// algebraic condition of a design — causality, routability, exclusivity —
// and records how: a Farkas bound with its multipliers, an emptiness
// certificate, a route witness, a determinant / lattice-kernel proof, or a
// rowspan combination for the fold rule. A DesignCertificate is the full
// list. Certificates serialize to JSON (support/json.hpp) and back
// bit-identically, and are re-checked *without* re-running any search or
// LP — integer substitution and small exact solves only — so a stored
// certificate is a proof object, not a cached verdict.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/farkas.hpp"
#include "support/json.hpp"

namespace nusys {

/// How one obligation was discharged.
enum class ObligationStatus {
  kCertified,   ///< Proven over the whole domain; proof payload attached.
  kEnumerated,  ///< No certificate applied; verified by exact enumeration.
  kViolated,    ///< A concrete counterexample was found.
};

[[nodiscard]] const char* obligation_status_name(ObligationStatus status);

/// One discharged obligation with its proof payload. Which payload fields
/// are meaningful depends on `kind`:
///   * "local-causality" / "global-causality": `bound` (Farkas, with the
///     integrality lift applied by the checker), or `empty` for a vacuous
///     guard;
///   * "local-route" / "global-route": `route` + `displacement` (+ `bound`
///     for the global slack minimum, `witness` anchoring the constant
///     displacement);
///   * "injectivity": `kernel` (domain difference lattice), `rows` (row
///     subset of Π restricted to the kernel) and `determinant`;
///   * "exclusivity-pair": `combination` (fold rows as rational
///     combinations of slot-coincidence relations) or `empty` (the two
///     modules never share a slot at all).
struct ObligationRecord {
  std::string id;    ///< Stable name, e.g. "global/A1/causality".
  std::string kind;  ///< Obligation family (see above).
  ObligationStatus status = ObligationStatus::kEnumerated;
  std::string detail;  ///< Human-readable summary or counterexample.

  std::optional<FarkasBound> bound;
  std::optional<FarkasEmpty> empty;
  std::optional<IntVec> route;
  std::optional<IntVec> displacement;
  std::optional<IntVec> witness;
  std::optional<i64> determinant;
  std::vector<IntVec> kernel;
  std::vector<std::size_t> rows;
  FracMat combination;

  friend bool operator==(const ObligationRecord& a,
                         const ObligationRecord& b) = default;
};

/// Every obligation of one analyzed design.
struct DesignCertificate {
  std::string design;  ///< Free-form label ("dp-fig2 n=64", ...).
  std::vector<ObligationRecord> obligations;

  [[nodiscard]] std::size_t count(ObligationStatus status) const;

  friend bool operator==(const DesignCertificate& a,
                         const DesignCertificate& b) = default;
};

/// JSON round-trip. certificate_from_json throws JsonError on a
/// structurally malformed document; a *well-formed but wrong* certificate
/// parses fine and is rejected later by the checker.
[[nodiscard]] JsonValue certificate_to_json(const DesignCertificate& cert);
[[nodiscard]] DesignCertificate certificate_from_json(const JsonValue& json);

}  // namespace nusys
