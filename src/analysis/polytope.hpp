// Facet view of an IndexDomain: the rational polytope behind a loop nest.
//
// The static analyzer reasons about a domain through its affine facets
// instead of its points. A loop nest with bounds affine in earlier
// dimensions plus extra `expr >= 0` constraints is exactly an H-polytope
// {x | A·x + b >= 0}; thin axes (lower == upper) and opposite constraint
// pairs are additionally *equalities*, whose integer kernel spans every
// direction two domain points can differ in. Both views feed the Farkas /
// lattice certificates in analysis/farkas.hpp and analysis/analyzer.hpp.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "ir/domain.hpp"
#include "linalg/vec.hpp"

namespace nusys {

/// One closed half-space  coeffs · x + constant >= 0.
struct AffineInequality {
  IntVec coeffs;
  i64 constant = 0;

  friend bool operator==(const AffineInequality& a,
                         const AffineInequality& b) = default;
};

/// One hyperplane  coeffs · x + constant == 0.
struct AffineEquality {
  IntVec coeffs;
  i64 constant = 0;

  friend bool operator==(const AffineEquality& a,
                         const AffineEquality& b) = default;
};

/// The facets of an IndexDomain. `inequalities` describe the full rational
/// relaxation (every integer point of the domain satisfies all of them);
/// `equalities` are the detected hyperplanes the domain lies on (thin axes
/// and opposite-constraint pairs). Equalities also appear in
/// `inequalities` as their two half-spaces, so the inequality list alone
/// is a complete relaxation.
struct DomainFacets {
  std::size_t dim = 0;
  std::vector<AffineInequality> inequalities;
  std::vector<AffineEquality> equalities;
};

/// Extracts the facet view of `domain`. Exact: a point satisfies the
/// domain's bounds and constraints iff it satisfies every inequality.
[[nodiscard]] DomainFacets domain_facets(const IndexDomain& domain);

/// A saturated basis of the integer solutions of  E·u = 0  over the
/// equality normals of `facets`: every difference p - q of two domain
/// points is an integer combination of the returned vectors. With no
/// equalities this is the standard basis.
[[nodiscard]] std::vector<IntVec> equality_kernel_basis(
    const DomainFacets& facets);

/// Outcome of a budgeted search for one integer point of a domain.
struct WitnessSearch {
  /// Lexicographically first point found, if any.
  std::optional<IntVec> point;
  /// True when the whole domain was scanned (so no point => truly empty);
  /// false when the budget ran out first.
  bool exhausted = false;
};

/// Scans `domain` in lexicographic order for an integer point, giving up
/// after visiting `budget` candidate leaves. Cheap anchor for the
/// affine-hull reductions; certificates never depend on the budget.
[[nodiscard]] WitnessSearch find_integer_point(const IndexDomain& domain,
                                               std::size_t budget);

}  // namespace nusys
