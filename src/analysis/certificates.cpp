#include "analysis/certificates.hpp"

#include <utility>

namespace nusys {

namespace {

JsonValue fraction_to_json(const Fraction& f) {
  JsonValue v;
  v.push_back(f.num());
  v.push_back(f.den());
  return v;
}

Fraction fraction_from_json(const JsonValue& v) {
  const auto& a = v.as_array();
  if (a.size() != 2) {
    throw JsonError("fraction: expected [num, den]", 0);
  }
  return Fraction(a[0].as_int(), a[1].as_int());
}

JsonValue frac_vec_to_json(const FracVec& v) {
  JsonValue out = JsonValue(JsonValue::Array{});
  for (const auto& f : v) out.push_back(fraction_to_json(f));
  return out;
}

FracVec frac_vec_from_json(const JsonValue& v) {
  FracVec out;
  for (const auto& f : v.as_array()) out.push_back(fraction_from_json(f));
  return out;
}

JsonValue int_vec_to_json(const IntVec& v) {
  JsonValue out = JsonValue(JsonValue::Array{});
  for (const i64 x : v) out.push_back(x);
  return out;
}

IntVec int_vec_from_json(const JsonValue& v) {
  std::vector<i64> values;
  values.reserve(v.as_array().size());
  for (const auto& x : v.as_array()) values.push_back(x.as_int());
  return IntVec(std::move(values));
}

}  // namespace

const char* obligation_status_name(ObligationStatus status) {
  switch (status) {
    case ObligationStatus::kCertified:
      return "certified";
    case ObligationStatus::kEnumerated:
      return "enumerated";
    case ObligationStatus::kViolated:
      return "violated";
  }
  return "?";
}

std::size_t DesignCertificate::count(ObligationStatus status) const {
  std::size_t n = 0;
  for (const auto& o : obligations) {
    if (o.status == status) ++n;
  }
  return n;
}

JsonValue certificate_to_json(const DesignCertificate& cert) {
  JsonValue doc;
  doc.set("format", "nusys-certificate");
  doc.set("version", 1);
  doc.set("design", cert.design);
  JsonValue obligations = JsonValue(JsonValue::Array{});
  for (const auto& o : cert.obligations) {
    JsonValue entry;
    entry.set("id", o.id);
    entry.set("kind", o.kind);
    entry.set("status", obligation_status_name(o.status));
    if (!o.detail.empty()) entry.set("detail", o.detail);
    if (o.bound) {
      JsonValue b;
      b.set("bound", fraction_to_json(o.bound->bound));
      b.set("multipliers", frac_vec_to_json(o.bound->multipliers));
      entry.set("farkas", std::move(b));
    }
    if (o.empty) {
      entry.set("empty", frac_vec_to_json(o.empty->multipliers));
    }
    if (o.route) entry.set("route", int_vec_to_json(*o.route));
    if (o.displacement) {
      entry.set("displacement", int_vec_to_json(*o.displacement));
    }
    if (o.witness) entry.set("witness", int_vec_to_json(*o.witness));
    if (o.determinant) entry.set("determinant", *o.determinant);
    if (!o.kernel.empty()) {
      JsonValue k = JsonValue(JsonValue::Array{});
      for (const auto& v : o.kernel) k.push_back(int_vec_to_json(v));
      entry.set("kernel", std::move(k));
    }
    if (!o.rows.empty()) {
      JsonValue r = JsonValue(JsonValue::Array{});
      for (const std::size_t row : o.rows) {
        r.push_back(static_cast<i64>(row));
      }
      entry.set("rows", std::move(r));
    }
    if (!o.combination.empty()) {
      JsonValue c = JsonValue(JsonValue::Array{});
      for (const auto& row : o.combination) {
        c.push_back(frac_vec_to_json(row));
      }
      entry.set("combination", std::move(c));
    }
    obligations.push_back(std::move(entry));
  }
  doc.set("obligations", std::move(obligations));
  return doc;
}

DesignCertificate certificate_from_json(const JsonValue& json) {
  if (json.at("format").as_string() != "nusys-certificate" ||
      json.at("version").as_int() != 1) {
    throw JsonError("certificate: unknown format or version", 0);
  }
  DesignCertificate cert;
  cert.design = json.at("design").as_string();
  for (const auto& entry : json.at("obligations").as_array()) {
    ObligationRecord o;
    o.id = entry.at("id").as_string();
    o.kind = entry.at("kind").as_string();
    const std::string& status = entry.at("status").as_string();
    if (status == "certified") {
      o.status = ObligationStatus::kCertified;
    } else if (status == "enumerated") {
      o.status = ObligationStatus::kEnumerated;
    } else if (status == "violated") {
      o.status = ObligationStatus::kViolated;
    } else {
      throw JsonError("certificate: unknown obligation status", 0);
    }
    if (const auto* v = entry.find("detail")) o.detail = v->as_string();
    if (const auto* v = entry.find("farkas")) {
      FarkasBound b;
      b.bound = fraction_from_json(v->at("bound"));
      b.multipliers = frac_vec_from_json(v->at("multipliers"));
      o.bound = std::move(b);
    }
    if (const auto* v = entry.find("empty")) {
      o.empty = FarkasEmpty{frac_vec_from_json(*v)};
    }
    if (const auto* v = entry.find("route")) o.route = int_vec_from_json(*v);
    if (const auto* v = entry.find("displacement")) {
      o.displacement = int_vec_from_json(*v);
    }
    if (const auto* v = entry.find("witness")) {
      o.witness = int_vec_from_json(*v);
    }
    if (const auto* v = entry.find("determinant")) {
      o.determinant = v->as_int();
    }
    if (const auto* v = entry.find("kernel")) {
      for (const auto& k : v->as_array()) {
        o.kernel.push_back(int_vec_from_json(k));
      }
    }
    if (const auto* v = entry.find("rows")) {
      for (const auto& r : v->as_array()) {
        const i64 row = r.as_int();
        if (row < 0) throw JsonError("certificate: negative row index", 0);
        o.rows.push_back(static_cast<std::size_t>(row));
      }
    }
    if (const auto* v = entry.find("combination")) {
      for (const auto& row : v->as_array()) {
        o.combination.push_back(frac_vec_from_json(row));
      }
    }
    cert.obligations.push_back(std::move(o));
  }
  return cert;
}

}  // namespace nusys
