// IR lint: structural diagnostics over recurrences, non-uniform specs and
// module systems.
//
// The analyzer (analysis/analyzer.hpp) proves a *design*; the linter vets
// the *input IR* before any synthesis runs: zero or mis-dimensioned
// dependence vectors (CA1-CA4), provably empty or degenerate domains,
// guards that may escape their module domains, and coefficient magnitudes
// large enough to threaten the checked 64-bit arithmetic downstream
// (support/checked.hpp). Every rule is purely structural or discharged by
// the same Farkas machinery the analyzer uses — the linter never
// enumerates an index domain, so it is safe on arbitrarily large inputs.
//
// Diagnostics carry a rule name from the registry (lint_rules()), a
// severity, and — where a mechanical repair exists — a fix-it hint.
#pragma once

#include <string>
#include <vector>

#include "analysis/plan_audit.hpp"
#include "ir/nonuniform.hpp"
#include "ir/recurrence.hpp"
#include "modules/module_system.hpp"
#include "partition/tile_plan.hpp"
#include "support/json.hpp"

namespace nusys {

enum class LintSeverity { kError, kWarning, kNote };

[[nodiscard]] const char* lint_severity_name(LintSeverity severity);

/// One finding. `fixit` is empty when no mechanical repair applies.
struct LintDiagnostic {
  std::string rule;
  LintSeverity severity = LintSeverity::kNote;
  std::string message;
  std::string fixit;

  friend bool operator==(const LintDiagnostic& a,
                         const LintDiagnostic& b) = default;
};

/// All findings for one linted object.
struct LintReport {
  std::string subject;  ///< Name of the linted IR object.
  std::vector<LintDiagnostic> diagnostics;

  /// True when no *error*-severity diagnostic was raised; warnings and
  /// notes never fail a lint.
  [[nodiscard]] bool ok() const;
  [[nodiscard]] std::size_t count(LintSeverity severity) const;
  [[nodiscard]] std::string summary() const;
  [[nodiscard]] JsonValue to_json() const;
};

/// A registered rule (name + default severity + what it checks).
struct LintRule {
  std::string name;
  LintSeverity severity;
  std::string description;
};

/// The full rule registry, in stable order.
[[nodiscard]] const std::vector<LintRule>& lint_rules();

/// Coefficient magnitude above which products across a few dimensions
/// start to threaten checked 64-bit arithmetic; the overflow-risk rule
/// fires beyond it.
inline constexpr i64 kLintOverflowRiskLimit = i64{1} << 20;

[[nodiscard]] LintReport lint_recurrence(const CanonicRecurrence& recurrence);
[[nodiscard]] LintReport lint_nonuniform(const NonUniformSpec& spec);
[[nodiscard]] LintReport lint_module_system(const ModuleSystem& sys);

/// Tile-plan lint: warns when an LPGS plan's longest producer→consumer
/// tile distance exceeds what the per-edge I/O buffers retain
/// (buffer_depth - 1 tile generations) — every such crossing is evicted
/// before its consumer runs and must be re-fed from the host. The fix-it
/// names the smallest depth that makes every crossing a reuse hit.
[[nodiscard]] LintReport lint_tile_plan(const UniformTilePlan& plan);

/// Plan-audit lint: translates every *violated* obligation of a plan
/// audit (analysis/plan_audit.hpp) into an error-severity diagnostic
/// under the matching plan-*/tile-* registry rule, with a fix-it hint
/// naming the mechanical repair (rebuild, invalidate, depth bump).
/// Certified obligations produce no diagnostics, so a clean audit lints
/// clean.
[[nodiscard]] LintReport lint_plan_audit(const PlanAuditReport& audit);

/// Raw-parts entry points for IR that has not (or cannot) be constructed:
/// the CanonicRecurrence / NonUniformSpec constructors throw on the first
/// CA violation they meet, while a front end wants *all* diagnostics with
/// fix-it hints before deciding whether to build the object at all. The
/// typed overloads above delegate here.
[[nodiscard]] LintReport lint_recurrence_parts(const std::string& name,
                                               const IndexDomain& domain,
                                               const DependenceSet& deps);
[[nodiscard]] LintReport lint_nonuniform_parts(
    const std::string& name, const IndexDomain& full_domain,
    const std::vector<NonConstantDep>& deps);

}  // namespace nusys
