#include "analysis/lint.hpp"

#include <limits>
#include <optional>
#include <set>
#include <sstream>
#include <utility>

#include "analysis/farkas.hpp"
#include "analysis/polytope.hpp"

namespace nusys {

namespace {

void add(LintReport& report, const std::string& rule, LintSeverity severity,
         std::string message, std::string fixit = "") {
  report.diagnostics.push_back(
      {rule, severity, std::move(message), std::move(fixit)});
}

/// Swallows overflow inside a lint probe; a rule that cannot be evaluated
/// is simply not raised (the overflow-risk rule flags the magnitudes).
template <typename F>
auto probe(F&& f) -> decltype(f()) {
  try {
    return f();
  } catch (const Error&) {
    return {};
  }
}

i64 max_abs(const IntVec& v) {
  i64 m = 0;
  for (const i64 x : v) {
    const i64 a = x < 0 ? (x == std::numeric_limits<i64>::min()
                               ? std::numeric_limits<i64>::max()
                               : -x)
                        : x;
    if (a > m) m = a;
  }
  return m;
}

i64 max_abs(const AffineExpr& e) {
  const i64 c = e.constant_term();
  const i64 a = c < 0 ? (c == std::numeric_limits<i64>::min()
                             ? std::numeric_limits<i64>::max()
                             : -c)
                      : c;
  const i64 m = max_abs(e.coeffs());
  return a > m ? a : m;
}

void check_overflow_risk(LintReport& report, const std::string& what,
                         i64 magnitude) {
  if (magnitude <= kLintOverflowRiskLimit) return;
  std::ostringstream os;
  os << what << " carries a coefficient of magnitude " << magnitude
     << " (> " << kLintOverflowRiskLimit
     << "); products across dimensions may overflow checked 64-bit "
        "arithmetic";
  add(report, "overflow-risk", LintSeverity::kWarning, os.str(),
      "rescale the model so coefficients stay small");
}

void lint_domain(LintReport& report, const std::string& what,
                 const IndexDomain& domain) {
  for (std::size_t k = 0; k < domain.dim(); ++k) {
    check_overflow_risk(report, what + " lower bound of " +
                                    domain.names()[k],
                        max_abs(domain.bounds(k).lower));
    check_overflow_risk(report, what + " upper bound of " +
                                    domain.names()[k],
                        max_abs(domain.bounds(k).upper));
  }
  for (const auto& c : domain.constraints()) {
    check_overflow_risk(report, what + " constraint", max_abs(c));
  }

  const auto facets = probe(
      [&]() -> std::optional<DomainFacets> { return domain_facets(domain); });
  if (!facets) return;
  if (probe([&] { return prove_empty(facets->inequalities); })) {
    add(report, "empty-domain", LintSeverity::kError,
        what + " is provably empty: no index point satisfies its bounds",
        "check the loop bounds; a lower bound exceeds its upper bound");
    return;
  }
  if (!facets->equalities.empty()) {
    std::ostringstream os;
    os << what << " lies in a " << facets->equalities.size()
       << "-codimensional affine subspace (an axis or constraint pins it)";
    add(report, "degenerate-domain", LintSeverity::kNote, os.str());
  }
}

void lint_dependences(LintReport& report, const std::string& what,
                      const DependenceSet& deps, std::size_t domain_dim) {
  std::set<std::string> seen;
  for (const auto& dep : deps) {
    if (!seen.insert(dep.variable).second) {
      add(report, "duplicate-variable", LintSeverity::kError,
          what + " binds variable '" + dep.variable +
              "' to more than one dependence vector (CA4: single use "
              "after generation)",
          "split the variable into one name per dependence");
    }
    if (dep.vector.dim() != domain_dim) {
      std::ostringstream os;
      os << what << " dependence '" << dep.variable << "' has dimension "
         << dep.vector.dim() << " but the domain has " << domain_dim
         << " (CA1: every variable is indexed by the full tuple)";
      add(report, "dimension-mismatch", LintSeverity::kError, os.str());
      continue;
    }
    if (dep.vector.is_zero()) {
      add(report, "zero-dependence", LintSeverity::kError,
          what + " dependence '" + dep.variable +
              "' is the zero vector, making the dependence order "
              "reflexive",
          "a value may not be consumed at the index that produces it; "
          "drop the dependence or shift it");
    }
    check_overflow_risk(report, what + " dependence '" + dep.variable + "'",
                        max_abs(dep.vector));
  }
}

/// Tries to prove `inner ⊆ {x | expr(M·x + off) >= 0}` by a Farkas bound on
/// the composed affine form; nullopt when the proof fails (which does NOT
/// imply a violation — the linter never enumerates to find one).
bool containment_proven(const DomainFacets& inner, const AffineExpr& outer,
                        const IntMat& m, const IntVec& offset) {
  return probe([&]() -> std::optional<FarkasBound> {
           IntVec composed(m.cols());
           for (std::size_t k = 0; k < m.cols(); ++k) {
             i64 v = 0;
             for (std::size_t r = 0; r < m.rows(); ++r) {
               v = checked_add(v,
                               checked_mul(outer.coeffs()[r], m(r, k)));
             }
             composed[k] = v;
           }
           const i64 constant = checked_add(outer.coeffs().dot(offset),
                                            outer.constant_term());
           const auto bound =
               prove_lower_bound(inner.inequalities, composed, constant);
           if (!bound || bound->bound < Fraction(0)) return std::nullopt;
           return bound;
         })
      .has_value();
}

/// All affine forms that must be nonnegative on a domain's points: per-axis
/// bound residuals plus the extra constraints.
std::vector<AffineExpr> nonnegative_forms(const IndexDomain& domain) {
  std::vector<AffineExpr> forms;
  for (std::size_t k = 0; k < domain.dim(); ++k) {
    forms.push_back(AffineExpr::index(domain.dim(), k) -
                    domain.bounds(k).lower);
    forms.push_back(domain.bounds(k).upper -
                    AffineExpr::index(domain.dim(), k));
  }
  for (const auto& c : domain.constraints()) forms.push_back(c);
  return forms;
}

}  // namespace

const char* lint_severity_name(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kError:
      return "error";
    case LintSeverity::kWarning:
      return "warning";
    case LintSeverity::kNote:
      return "note";
  }
  return "?";
}

bool LintReport::ok() const { return count(LintSeverity::kError) == 0; }

std::size_t LintReport::count(LintSeverity severity) const {
  std::size_t n = 0;
  for (const auto& d : diagnostics) {
    if (d.severity == severity) ++n;
  }
  return n;
}

std::string LintReport::summary() const {
  std::ostringstream os;
  os << "lint " << subject << ": " << count(LintSeverity::kError)
     << " error(s), " << count(LintSeverity::kWarning) << " warning(s), "
     << count(LintSeverity::kNote) << " note(s)";
  return os.str();
}

JsonValue LintReport::to_json() const {
  JsonValue doc;
  doc.set("subject", subject);
  doc.set("ok", ok());
  doc.set("errors", count(LintSeverity::kError));
  doc.set("warnings", count(LintSeverity::kWarning));
  doc.set("notes", count(LintSeverity::kNote));
  JsonValue list = JsonValue(JsonValue::Array{});
  for (const auto& d : diagnostics) {
    JsonValue entry;
    entry.set("rule", d.rule);
    entry.set("severity", lint_severity_name(d.severity));
    entry.set("message", d.message);
    if (!d.fixit.empty()) entry.set("fixit", d.fixit);
    list.push_back(std::move(entry));
  }
  doc.set("diagnostics", std::move(list));
  return doc;
}

const std::vector<LintRule>& lint_rules() {
  static const std::vector<LintRule> rules = {
      {"empty-domain", LintSeverity::kError,
       "index domain provably contains no integer point"},
      {"degenerate-domain", LintSeverity::kNote,
       "index domain lies in a proper affine subspace"},
      {"zero-dependence", LintSeverity::kError,
       "dependence vector is zero (reflexive ordering)"},
      {"duplicate-variable", LintSeverity::kError,
       "variable bound to more than one dependence vector (CA4)"},
      {"dimension-mismatch", LintSeverity::kError,
       "dependence or map dimension differs from the domain (CA1)"},
      {"undeclared-nonconstant-dependence", LintSeverity::kError,
       "non-constant template replaces an axis outside the statement "
       "space"},
      {"replaced-axis-entry", LintSeverity::kNote,
       "non-constant template carries an ignored entry on its replaced "
       "axis"},
      {"global-index-range", LintSeverity::kError,
       "global dependence names a module index that does not exist"},
      {"guard-containment", LintSeverity::kWarning,
       "guard points (or their producer images) could not be proven to "
       "stay inside the module domains"},
      {"guard-empty", LintSeverity::kWarning,
       "global dependence guard is provably empty; the statement never "
       "fires"},
      {"overflow-risk", LintSeverity::kWarning,
       "coefficient magnitude threatens checked 64-bit arithmetic"},
      {"tile-buffer-depth", LintSeverity::kWarning,
       "tile-boundary dependence distance exceeds the I/O buffer depth, "
       "so crossing values are evicted and re-fed from the host"},
      {"plan-front-order", LintSeverity::kError,
       "compiled wavefronts are non-contiguous, out of tick order, or "
       "disagree with the schedule"},
      {"plan-antichain", LintSeverity::kError,
       "a front is not an anti-chain: some dependence has non-positive "
       "slack under T"},
      {"plan-coverage", LintSeverity::kError,
       "compiled op list does not cover the index domain exactly "
       "(missing, duplicated or foreign points)"},
      {"plan-consumer-links", LintSeverity::kError,
       "consumer[] wiring disagrees with the dependence matrix or reads "
       "an unwritten slot"},
      {"plan-routing", LintSeverity::kError,
       "a dependence displacement S*d is unroutable as Delta*k within "
       "its slack (eq. (3))"},
      {"plan-slot-alias", LintSeverity::kError,
       "two producers scatter into one operand slot (or a slot has no "
       "unique writer/reader)"},
      {"plan-boundary", LintSeverity::kError,
       "boundary prefill list is incomplete, duplicated, out of range or "
       "collides with a scatter target"},
      {"plan-fold", LintSeverity::kError,
       "ops folded onto one (cell, tick) do not share a fold group"},
      {"plan-accounting", LintSeverity::kError,
       "plan size fields or plan_bytes() disagree with recomputed "
       "element counts"},
      {"tile-epoch", LintSeverity::kError,
       "per-tile tick segments overlap, run backwards, or exclude their "
       "own points"},
      {"tile-flow-order", LintSeverity::kError,
       "an inter-tile dependence flows backwards in tile execution order"},
      {"tile-classification", LintSeverity::kError,
       "tile dependence kinds or the buffered-crossing list disagree "
       "with the recomputed split"},
      {"tile-depth-ledger", LintSeverity::kError,
       "reuse/refeed ledger disagrees with the configured buffer depth"},
      {"tile-buffer-ledger", LintSeverity::kError,
       "buffered-value counts, buffer bytes or the residency high-water "
       "disagree with an event replay"},
      {"tile-window", LintSeverity::kError,
       "tile window exceeds the P*Q budget, duplicates cells, or places "
       "a cell outside itself"},
  };
  return rules;
}

namespace {

/// Registry rule + fix-it for one violated audit-obligation id. The
/// suffix after the last '/' names the obligation class; the prefix
/// ("plan/" vs "tile/") picks the rule family.
std::pair<std::string, std::string> plan_audit_rule_for(
    const std::string& id) {
  const std::size_t cut = id.find_last_of('/');
  const std::string suffix =
      cut == std::string::npos ? id : id.substr(cut + 1);
  const bool tile = id.rfind("tile/", 0) == 0;
  const std::string rebuild =
      "invalidate the cached plan and rebuild it from the source mapping "
      "(the artifact no longer matches its structural key)";
  if (tile) {
    if (suffix == "epoch-disjoint") {
      return {"tile-epoch", rebuild};
    }
    if (suffix == "tile-order") {
      return {"tile-flow-order",
              "re-tile with a schedule-compatible tile shape; the Kahn "
              "order over tiles must stay acyclic"};
    }
    if (suffix == "classification") return {"tile-classification", rebuild};
    if (suffix == "tile-depth") {
      return {"tile-depth-ledger",
              "recompute the ledger with the configured depth, or bump "
              "--tile-depth so every crossing is a reuse hit"};
    }
    if (suffix == "buffer-ledger") return {"tile-buffer-ledger", rebuild};
    if (suffix == "window") {
      return {"tile-window",
              "shrink the tile shape or enlarge the physical array so "
              "every placed cell fits the P*Q window"};
    }
    return {"plan-coverage", rebuild};  // tile "coverage"
  }
  if (suffix == "front-order") return {"plan-front-order", rebuild};
  if (suffix == "front-antichain") {
    return {"plan-antichain",
            "pick a schedule with T*d >= 1 for every dependence (the "
            "analyzer's causality obligation)"};
  }
  if (suffix == "domain-coverage" || suffix == "op-coverage") {
    return {"plan-coverage", rebuild};
  }
  if (suffix == "consumer-links") return {"plan-consumer-links", rebuild};
  if (suffix.rfind("route-", 0) == 0) {
    return {"plan-routing",
            "extend the interconnect or relax the schedule so S*d is "
            "reachable within T*d hops"};
  }
  if (suffix == "slot-alias") return {"plan-slot-alias", rebuild};
  if (suffix == "boundary") return {"plan-boundary", rebuild};
  if (suffix == "fold-discipline") return {"plan-fold", rebuild};
  return {"plan-accounting", rebuild};  // byte-accounting and fallback
}

}  // namespace

LintReport lint_plan_audit(const PlanAuditReport& audit) {
  LintReport report;
  report.subject = audit.certificate.design;
  for (const ObligationRecord& ob : audit.certificate.obligations) {
    if (ob.status != ObligationStatus::kViolated) continue;
    const auto [rule, fixit] = plan_audit_rule_for(ob.id);
    add(report, rule, LintSeverity::kError, ob.id + ": " + ob.detail, fixit);
  }
  return report;
}

LintReport lint_recurrence(const CanonicRecurrence& recurrence) {
  return lint_recurrence_parts(recurrence.name(), recurrence.domain(),
                               recurrence.dependences());
}

LintReport lint_tile_plan(const UniformTilePlan& plan) {
  LintReport report;
  report.subject = std::string("tile plan ") +
                   tile_strategy_name(plan.strategy) + " " +
                   tile_shape_name(plan.options);
  const i64 retained = plan.options.buffer_depth - 1;
  if (plan.strategy == TileStrategy::kLPGS &&
      plan.buffer_stats.max_tile_distance > retained) {
    add(report, "tile-buffer-depth", LintSeverity::kWarning,
        "longest tile-boundary dependence spans " +
            std::to_string(plan.buffer_stats.max_tile_distance) +
            " tile(s) but depth-" +
            std::to_string(plan.options.buffer_depth) +
            " buffers retain only " + std::to_string(retained) +
            " generation(s): " + std::to_string(plan.buffer_stats.refeeds) +
            " of " + std::to_string(plan.buffer_stats.buffered_values) +
            " crossing value(s) are re-fed from the host",
        "increase tile buffer depth to >= " +
            std::to_string(plan.buffer_stats.max_tile_distance + 1) +
            " (--tile-depth) to make every crossing a reuse hit");
  }
  return report;
}

LintReport lint_nonuniform(const NonUniformSpec& spec) {
  return lint_nonuniform_parts(spec.name(), spec.full_domain(), spec.deps());
}

LintReport lint_recurrence_parts(const std::string& name,
                                 const IndexDomain& domain,
                                 const DependenceSet& deps) {
  LintReport report;
  report.subject = name;
  lint_domain(report, "domain", domain);
  lint_dependences(report, "recurrence", deps, domain.dim());
  return report;
}

LintReport lint_nonuniform_parts(const std::string& name,
                                 const IndexDomain& full_domain,
                                 const std::vector<NonConstantDep>& deps) {
  LintReport report;
  report.subject = name;
  lint_domain(report, "full domain", full_domain);
  if (full_domain.dim() < 2) {
    add(report, "dimension-mismatch", LintSeverity::kError,
        "a non-uniform spec needs a reduction dimension plus at least one "
        "statement dimension");
    return report;
  }
  const std::size_t s = full_domain.dim() - 1;
  for (std::size_t j = 0; j < deps.size(); ++j) {
    const NonConstantDep& dep = deps[j];
    const std::string what =
        "template " + std::to_string(j) + " ('" + dep.variable + "')";
    if (dep.base.dim() != s) {
      std::ostringstream os;
      os << what << " has base dimension " << dep.base.dim()
         << " but the statement space has " << s;
      add(report, "dimension-mismatch", LintSeverity::kError, os.str());
      continue;
    }
    if (dep.replaced_axis >= s) {
      std::ostringstream os;
      os << what << " replaces axis " << dep.replaced_axis
         << ", outside the statement space of dimension " << s
         << " — the dependence is effectively undeclared";
      add(report, "undeclared-nonconstant-dependence", LintSeverity::kError,
          os.str(),
          "the replaced component must name a statement axis (< n-1)");
      continue;
    }
    if (dep.base[dep.replaced_axis] != 0) {
      std::ostringstream os;
      os << what << " carries base entry " << dep.base[dep.replaced_axis]
         << " on its replaced axis; the expansion ignores it";
      add(report, "replaced-axis-entry", LintSeverity::kNote, os.str(),
          "set the replaced-axis entry to 0 to make the template "
          "self-describing");
    }
    check_overflow_risk(report, what, max_abs(dep.base));
  }
  return report;
}

LintReport lint_module_system(const ModuleSystem& sys) {
  LintReport report;
  report.subject = sys.name();
  for (std::size_t m = 0; m < sys.module_count(); ++m) {
    const Module& mod = sys.module(m);
    const std::string what = "module '" + mod.name + "'";
    lint_domain(report, what + " domain", mod.domain);
    lint_dependences(report, what, mod.local_deps, mod.domain.dim());
  }
  for (const auto& g : sys.globals()) {
    const std::string what = "global '" + g.name + "'";
    if (g.consumer >= sys.module_count() || g.producer >= sys.module_count()) {
      add(report, "global-index-range", LintSeverity::kError,
          what + " names a module index outside the system");
      continue;
    }
    if (g.producer_point.input_dim() != g.guard.dim() ||
        g.producer_point.output_dim() !=
            sys.module(g.producer).domain.dim()) {
      add(report, "dimension-mismatch", LintSeverity::kError,
          what + " producer map shape does not match the guard or "
                 "producer domain");
      continue;
    }
    lint_domain(report, what + " guard", g.guard);

    const auto guard_facets = probe([&]() -> std::optional<DomainFacets> {
      return domain_facets(g.guard);
    });
    if (!guard_facets) continue;
    if (probe([&] { return prove_empty(guard_facets->inequalities); })) {
      add(report, "guard-empty", LintSeverity::kWarning,
          what + " guard is provably empty; the statement never fires",
          "drop the statement or fix the guard bounds");
      continue;
    }

    // Containment proofs: guard ⊆ consumer domain, and the producer image
    // of the guard ⊆ producer domain. A failed proof is a warning, not an
    // error — the linter never enumerates to confirm a violation.
    const IntMat identity = IntMat::identity(g.guard.dim());
    const IntVec zero(g.guard.dim());
    bool consumer_ok = true;
    for (const auto& form :
         nonnegative_forms(sys.module(g.consumer).domain)) {
      if (!containment_proven(*guard_facets, form, identity, zero)) {
        consumer_ok = false;
        break;
      }
    }
    if (!consumer_ok) {
      add(report, "guard-containment", LintSeverity::kWarning,
          what + " guard could not be proven to stay inside the consumer "
                 "domain",
          "run `nusys analyze --paranoid` for a point-wise check");
    }
    bool producer_ok = true;
    for (const auto& form :
         nonnegative_forms(sys.module(g.producer).domain)) {
      if (!containment_proven(*guard_facets, form, g.producer_point.matrix(),
                              g.producer_point.offset())) {
        producer_ok = false;
        break;
      }
    }
    if (!producer_ok) {
      add(report, "guard-containment", LintSeverity::kWarning,
          what + " producer image could not be proven to stay inside the "
                 "producer domain",
          "run `nusys analyze --paranoid` for a point-wise check");
    }
  }
  return report;
}

}  // namespace nusys
