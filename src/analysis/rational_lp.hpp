// Exact rational linear programming and linear solving.
//
// The Farkas certificates of analysis/farkas.hpp are the optimal dual
// multipliers of tiny LPs (a handful of variables per facet of a loop
// nest). Floating point would make "certificate" a lie, so this is a
// textbook two-phase primal simplex over support/fraction.hpp with Bland's
// rule — slow in theory, instant at these sizes, and every pivot exact.
#pragma once

#include <optional>
#include <vector>

#include "support/fraction.hpp"

namespace nusys {

/// A dense rational matrix row / vector.
using FracVec = std::vector<Fraction>;
using FracMat = std::vector<FracVec>;

enum class LpStatus { kOptimal, kInfeasible, kUnbounded };

/// Outcome of one exact LP solve.
struct LpResult {
  LpStatus status = LpStatus::kInfeasible;
  FracVec solution;          ///< One optimal x (size = variable count).
  Fraction objective_value;  ///< objective · solution.
};

/// Solves  max objective·x  subject to  A·x = b, x >= 0  exactly.
/// `a` is row-major with one inner vector per constraint; every row must
/// have `objective.size()` entries. Anti-cycling via Bland's rule, so the
/// solve always terminates.
[[nodiscard]] LpResult solve_standard_lp(const FracMat& a, const FracVec& b,
                                         const FracVec& objective);

/// One rational solution of  A·x = b, or nullopt when the system is
/// inconsistent. Plain Gaussian elimination over Fraction.
[[nodiscard]] std::optional<FracVec> solve_rational_system(const FracMat& a,
                                                           const FracVec& b);

}  // namespace nusys
