#include "analysis/plan_audit.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "partition/lsgp.hpp"
#include "space/routing.hpp"
#include "support/checked.hpp"
#include "support/errors.hpp"

namespace nusys {

namespace {

/// Collects one obligation: checks append to `fail` (first failure
/// wins); finish() freezes the record as certified or violated.
class Obligation {
 public:
  Obligation(DesignCertificate& cert, const std::string& prefix,
             const std::string& suffix, const std::string& kind)
      : cert_(cert) {
    record_.id = prefix + "/" + suffix;
    record_.kind = kind;
  }

  /// Registers a failure; only the first one is kept.
  void fail(const std::string& detail) {
    if (fail_.empty()) fail_ = detail;
  }
  [[nodiscard]] bool failed() const { return !fail_.empty(); }

  ObligationRecord& record() { return record_; }

  /// `ok_detail` describes what was proven when nothing failed.
  void finish(const std::string& ok_detail) {
    record_.status = fail_.empty() ? ObligationStatus::kCertified
                                   : ObligationStatus::kViolated;
    record_.detail = fail_.empty() ? ok_detail : fail_;
    cert_.obligations.push_back(std::move(record_));
  }

 private:
  DesignCertificate& cert_;
  ObligationRecord record_;
  std::string fail_;
};

std::string at_var(const std::string& var, std::uint32_t x) {
  return "(var '" + var + "', position " + std::to_string(x) + ")";
}

// ---------------------------------------------------------------------------
// Uniform plans.

void audit_uniform_into(const CompiledUniformPlan& plan,
                        const CanonicRecurrence& rec,
                        const LinearSchedule& timing, const IntMat& space,
                        const Interconnect& net, const std::string& prefix,
                        DesignCertificate& cert) {
  rec.validate();
  const auto& deps = rec.dependences();
  const std::size_t width = deps.size();
  const auto& domain = rec.domain();
  const std::size_t count = plan.count;
  const std::size_t points_held = plan.points.size();

  // ---- front-order ----------------------------------------------------
  {
    Obligation o(cert, prefix, "front-order", "plan-front-order");
    if (plan.fronts.empty()) o.fail("plan has no wavefronts");
    std::uint32_t expected_begin = 0;
    i64 prev_tick = 0;
    for (std::size_t f = 0; f < plan.fronts.size() && !o.failed(); ++f) {
      const Wavefront& front = plan.fronts[f];
      if (front.begin != expected_begin) {
        o.fail("front " + std::to_string(f) + " begins at " +
               std::to_string(front.begin) + ", expected " +
               std::to_string(expected_begin) +
               " (fronts must tile [0, count) contiguously)");
      } else if (front.end <= front.begin) {
        o.fail("front " + std::to_string(f) + " is empty");
      } else if (f > 0 && front.tick <= prev_tick) {
        o.fail("front " + std::to_string(f) + " at tick " +
               std::to_string(front.tick) +
               " does not advance past the previous front's tick " +
               std::to_string(prev_tick));
      }
      expected_begin = front.end;
      prev_tick = front.tick;
    }
    if (!o.failed() && expected_begin != count) {
      o.fail("fronts cover [0, " + std::to_string(expected_begin) +
             "), plan has " + std::to_string(count) + " ops");
    }
    for (const Wavefront& front : plan.fronts) {
      if (o.failed()) break;
      const std::uint32_t end =
          std::min<std::uint32_t>(front.end,
                                  static_cast<std::uint32_t>(points_held));
      for (std::uint32_t x = front.begin; x < end; ++x) {
        if (timing.at(plan.points[x]) != front.tick) {
          o.fail("op " + plan.points[x].to_string() + " at position " +
                 std::to_string(x) + " sits in the tick-" +
                 std::to_string(front.tick) + " front but T maps it to tick " +
                 std::to_string(timing.at(plan.points[x])));
          break;
        }
      }
    }
    o.finish(std::to_string(plan.fronts.size()) +
             " fronts contiguous over [0, " + std::to_string(count) +
             ") with strictly ascending ticks matching T");
  }

  // ---- front-antichain ------------------------------------------------
  {
    Obligation o(cert, prefix, "front-antichain", "plan-antichain");
    i64 min_slack = 0;
    for (std::size_t d = 0; d < width; ++d) {
      const i64 slack = timing.at(deps[d].vector) - timing.offset();
      if (d == 0 || slack < min_slack) min_slack = slack;
      if (slack <= 0) {
        o.fail("dependence '" + deps[d].variable + "' has T·d = " +
               std::to_string(slack) +
               " <= 0: ops of one front may depend on each other");
        o.record().witness = deps[d].vector;
      }
    }
    o.record().determinant = min_slack;
    o.finish("T·d >= " + std::to_string(min_slack) + " over " +
             std::to_string(width) +
             " dependence(s): every front is an anti-chain under T");
  }

  // ---- domain-coverage ------------------------------------------------
  {
    Obligation o(cert, prefix, "domain-coverage", "plan-coverage");
    if (points_held != count) {
      o.fail("plan.count = " + std::to_string(count) + " but points[] holds " +
             std::to_string(points_held) + " entries");
    } else if (count != domain.size()) {
      o.fail("plan enumerates " + std::to_string(count) +
             " points, domain has " + std::to_string(domain.size()));
    }
    std::unordered_set<IntVec, IntVecHash> seen;
    seen.reserve(points_held);
    for (std::size_t x = 0; x < points_held && !o.failed(); ++x) {
      if (!domain.contains(plan.points[x])) {
        o.fail("points[" + std::to_string(x) + "] = " +
               plan.points[x].to_string() + " lies outside the domain");
      } else if (!seen.insert(plan.points[x]).second) {
        o.fail("point " + plan.points[x].to_string() +
               " appears twice in points[]");
      }
    }
    o.finish("points[] covers all " + std::to_string(domain.size()) +
             " domain points exactly once");
  }

  // Execution position of every held point (used by several checks).
  std::unordered_map<IntVec, std::uint32_t, IntVecHash> pos;
  pos.reserve(points_held);
  for (std::uint32_t x = 0; x < points_held; ++x) {
    pos.emplace(plan.points[x], x);
  }
  const bool links_held =
      plan.consumer.size() == width * count && points_held == count;

  // ---- consumer-links -------------------------------------------------
  {
    Obligation o(cert, prefix, "consumer-links", "plan-consumer");
    if (!links_held) {
      o.fail("consumer[] holds " + std::to_string(plan.consumer.size()) +
             " links, expected width*count = " +
             std::to_string(width * count));
    }
    for (std::uint32_t x = 0; x < points_held && !o.failed(); ++x) {
      for (std::size_t d = 0; d < width && !o.failed(); ++d) {
        const std::uint32_t actual = plan.consumer[d * count + x];
        const IntVec succ = plan.points[x] + deps[d].vector;
        if (domain.contains(succ)) {
          const auto it = pos.find(succ);
          if (it == pos.end()) {
            o.fail("in-domain successor " + succ.to_string() + " of " +
                   plan.points[x].to_string() + " via '" + deps[d].variable +
                   "' is missing from points[]");
          } else if (actual != it->second) {
            o.fail("op " + plan.points[x].to_string() + " links " +
                   at_var(deps[d].variable, actual) +
                   ", the dependence matrix says position " +
                   std::to_string(it->second));
          }
        } else if (actual != kNoConsumer) {
          o.fail("op " + plan.points[x].to_string() + " exits the domain on '" +
                 deps[d].variable + "' but links position " +
                 std::to_string(actual) + " instead of kNoConsumer");
        }
      }
    }
    o.finish("all " + std::to_string(width * count) +
             " links agree with the dependence matrix; kNoConsumer exactly "
             "on domain exits");
  }

  // ---- route-<var> (S·d = Δ·k within T·d, eq. (3)) --------------------
  std::vector<std::optional<Route>> routes(width);
  for (std::size_t d = 0; d < width; ++d) {
    Obligation o(cert, prefix, "route-" + deps[d].variable, "plan-route");
    const IntVec disp = space * deps[d].vector;
    const i64 slack = timing.at(deps[d].vector) - timing.offset();
    o.record().displacement = disp;
    o.record().witness = deps[d].vector;
    if (slack <= 0) {
      o.fail("no positive slack to route within (T·d = " +
             std::to_string(slack) + ")");
    } else {
      routes[d] = route_displacement(net, disp, slack);
      if (!routes[d]) {
        o.fail("S·d = " + disp.to_string() +
               " admits no link combination k with Δ·k = S·d and Σk <= " +
               std::to_string(slack));
      } else {
        o.record().route = routes[d]->hops_per_link;
        o.record().determinant = routes[d]->total_hops;
      }
    }
    o.finish("S·d = " + disp.to_string() + " routed in " +
             (routes[d] ? std::to_string(routes[d]->total_hops) : "?") +
             " hop(s) within slack " + std::to_string(slack));
  }

  // ---- slot-alias -----------------------------------------------------
  // targets[d * count + x] = some producer scatters into (var d, pos x).
  std::vector<char> targets(links_held ? width * count : 0, 0);
  {
    Obligation o(cert, prefix, "slot-alias", "plan-slot-alias");
    if (!links_held) o.fail("consumer[] is mis-sized; layout unverifiable");
    for (std::size_t d = 0; d < width && !o.failed(); ++d) {
      for (std::uint32_t x = 0; x < count && !o.failed(); ++x) {
        const std::uint32_t c = plan.consumer[d * count + x];
        if (c == kNoConsumer) continue;
        if (c >= count) {
          o.fail("link " + at_var(deps[d].variable, x) +
                 " targets out-of-range position " + std::to_string(c));
        } else if (targets[d * count + c] != 0) {
          o.fail("two producers scatter to the slot " +
                 at_var(deps[d].variable, c));
        } else {
          targets[d * count + c] = 1;
        }
      }
    }
    o.finish("column-major slot layout alias-free: every (var, position) "
             "slot has at most one producer");
  }

  // ---- boundary -------------------------------------------------------
  {
    Obligation o(cert, prefix, "boundary", "plan-boundary");
    std::vector<char> expected(links_held ? width * count : 0, 0);
    std::size_t expected_count = 0;
    if (links_held) {
      for (std::uint32_t x = 0; x < count; ++x) {
        for (std::size_t d = 0; d < width; ++d) {
          if (!domain.contains(plan.points[x] - deps[d].vector)) {
            expected[d * count + x] = 1;
            ++expected_count;
          }
        }
      }
    } else {
      o.fail("points[]/consumer[] mis-sized; boundary unverifiable");
    }
    std::vector<char> listed(expected.size(), 0);
    for (const auto& b : plan.boundary) {
      if (o.failed()) break;
      if (b.var >= width || b.x >= count) {
        o.fail("boundary entry " + at_var(std::to_string(b.var), b.x) +
               " is out of range");
      } else if (expected[b.var * count + b.x] == 0) {
        o.fail("boundary lists " + at_var(deps[b.var].variable, b.x) +
               " whose producer " +
               (plan.points[b.x] - deps[b.var].vector).to_string() +
               " is inside the domain");
      } else if (listed[b.var * count + b.x] != 0) {
        o.fail("boundary entry " + at_var(deps[b.var].variable, b.x) +
               " is listed twice");
      } else if (targets[b.var * count + b.x] != 0) {
        o.fail("boundary slot " + at_var(deps[b.var].variable, b.x) +
               " is also a producer scatter target");
      } else {
        listed[b.var * count + b.x] = 1;
      }
    }
    if (!o.failed() && plan.boundary.size() != expected_count) {
      std::string missing;
      for (std::size_t i = 0; i < expected.size() && missing.empty(); ++i) {
        if (expected[i] != 0 && listed[i] == 0) {
          const std::size_t d = i / count;
          missing = at_var(deps[d].variable,
                           static_cast<std::uint32_t>(i % count));
        }
      }
      o.fail("boundary lists " + std::to_string(plan.boundary.size()) +
             " of " + std::to_string(expected_count) +
             " domain-exit operands; first missing: " + missing);
    }
    o.finish("boundary list complete (" + std::to_string(expected_count) +
             " entries), duplicate-free and disjoint from scatter targets");
  }

  // ---- byte-accounting ------------------------------------------------
  {
    Obligation o(cert, prefix, "byte-accounting", "plan-accounting");
    if (plan.width != width) {
      o.fail("plan.width = " + std::to_string(plan.width) + ", design has " +
             std::to_string(width) + " dependences");
    }
    if (!o.failed() && points_held != count) {
      o.fail("points[] holds " + std::to_string(points_held) +
             " entries for count = " + std::to_string(count));
    }
    if (!o.failed() && plan.consumer.size() != width * count) {
      o.fail("consumer[] holds " + std::to_string(plan.consumer.size()) +
             " links, expected " + std::to_string(width * count));
    }
    std::uint32_t max_front = 0;
    for (const Wavefront& front : plan.fronts) {
      if (front.end > front.begin) {
        max_front = std::max(max_front, front.end - front.begin);
      }
    }
    if (!o.failed() && plan.max_front != max_front) {
      o.fail("plan.max_front = " + std::to_string(plan.max_front) +
             ", longest front holds " + std::to_string(max_front) + " ops");
    }
    if (!o.failed() && !plan.fronts.empty() &&
        (plan.first_tick != plan.fronts.front().tick ||
         plan.last_tick != plan.fronts.back().tick)) {
      o.fail("tick window [" + std::to_string(plan.first_tick) + ", " +
             std::to_string(plan.last_tick) + "] does not match the fronts [" +
             std::to_string(plan.fronts.front().tick) + ", " +
             std::to_string(plan.fronts.back().tick) + "]");
    }
    if (!o.failed()) {
      std::unordered_set<IntVec, IntVecHash> cells;
      for (std::size_t x = 0; x < points_held; ++x) {
        cells.insert(space * plan.points[x]);
      }
      if (plan.cell_count != cells.size()) {
        o.fail("plan.cell_count = " + std::to_string(plan.cell_count) +
               ", S places the domain onto " + std::to_string(cells.size()) +
               " cells");
      }
    }
    if (!o.failed()) {
      std::size_t hops = 0;
      bool routable = true;
      for (std::size_t d = 0; d < width; ++d) {
        std::size_t in_domain = 0;
        for (std::size_t x = 0; x < points_held; ++x) {
          if (domain.contains(plan.points[x] - deps[d].vector)) ++in_domain;
        }
        if (!routes[d]) {
          routable = false;
          break;
        }
        hops += in_domain * static_cast<std::size_t>(routes[d]->total_hops);
      }
      if (routable && plan.route_hops != hops) {
        o.fail("plan.route_hops = " + std::to_string(plan.route_hops) +
               ", recomputed min-hop routing totals " + std::to_string(hops));
      }
    }
    if (!o.failed()) {
      const std::size_t dim = points_held == 0 ? 0 : plan.points.front().dim();
      const std::size_t expected_bytes =
          count * dim * sizeof(i64) +
          width * count * sizeof(std::uint32_t) +
          plan.boundary.size() * sizeof(CompiledUniformPlan::Boundary) +
          plan.fronts.size() * sizeof(Wavefront) + 128;
      if (plan.plan_bytes() != expected_bytes) {
        o.fail("plan_bytes() = " + std::to_string(plan.plan_bytes()) +
               ", element counts total " + std::to_string(expected_bytes));
      }
    }
    o.finish("size fields, max_front, tick window, cell/route counts and "
             "plan_bytes() all match recomputed element counts");
  }
}

// ---------------------------------------------------------------------------
// DP plans.

void audit_dp_into(const detail::CompiledDPPlan& plan,
                   const DPArrayDesign& design, i64 period,
                   const std::string& prefix, DesignCertificate& cert) {
  using detail::COp;
  using detail::CompiledDPPlan;
  using detail::kNoSlot;
  using detail::OpKind;
  NUSYS_REQUIRE(design.schedules.size() == 3 && design.spaces.size() == 3,
                "audit_dp_plan: three schedules and three spaces required");
  NUSYS_REQUIRE(plan.n >= 3 && plan.instances >= 1,
                "audit_dp_plan: malformed plan shape");
  const i64 n = plan.n;
  const std::size_t instances = plan.instances;
  const detail::OpIndex index(n);
  const std::size_t op_count = instances * index.per_instance;
  const std::size_t held = plan.ops.size();

  // Recompute every op's enumeration fields and physical placement from
  // the design — the ground truth all checks compare against.
  const LsgpClustering clustering{design.block_x, design.block_y,
                                  design.block_base_x, design.block_base_y};
  std::vector<COp> expected;
  expected.reserve(op_count);
  std::vector<IntVec> cell_of;
  std::vector<i64> tick_of;
  cell_of.reserve(op_count);
  tick_of.reserve(op_count);
  const auto emit = [&](std::size_t inst, OpKind kind, i64 i, i64 j, i64 k) {
    COp op;
    op.inst = static_cast<std::uint32_t>(inst);
    op.kind = kind;
    op.i = static_cast<std::int32_t>(i);
    op.j = static_cast<std::int32_t>(j);
    op.k = static_cast<std::int32_t>(k);
    expected.push_back(op);
    const IntVec p{i, j, k};
    const i64 virtual_tick = checked_add(
        design.schedules[static_cast<std::size_t>(kind)].at(p),
        checked_mul(static_cast<i64>(inst), period));
    auto [cell, tick] =
        clustering.place(design.spaces[static_cast<std::size_t>(kind)] * p,
                         virtual_tick);
    cell_of.push_back(std::move(cell));
    tick_of.push_back(tick);
  };
  for (std::size_t inst = 0; inst < instances; ++inst) {
    for (i64 i = 1; i <= n; ++i) {
      for (i64 j = i + 2; j <= n; ++j) {
        const i64 mid = detail::mid_of(i, j);
        for (i64 k = mid; k >= i + 1; --k) emit(inst, detail::kM1, i, j, k);
        for (i64 k = mid + 1; k <= j - 1; ++k) emit(inst, detail::kM2, i, j, k);
        emit(inst, detail::kCombine, i, j, j);
      }
    }
  }

  // ---- op-coverage ----------------------------------------------------
  {
    Obligation o(cert, prefix, "op-coverage", "plan-coverage");
    if (held != op_count) {
      o.fail("plan holds " + std::to_string(held) + " ops, enumeration has " +
             std::to_string(op_count));
    }
    for (std::size_t oi = 0; oi < held && !o.failed(); ++oi) {
      const COp& a = plan.ops[oi];
      const COp& e = expected[oi];
      if (a.inst != e.inst || a.kind != e.kind || a.i != e.i || a.j != e.j ||
          a.k != e.k) {
        o.fail("op " + std::to_string(oi) +
               " does not match the closed-form enumeration order");
      }
    }
    if (!o.failed() && plan.order.size() != held) {
      o.fail("order[] holds " + std::to_string(plan.order.size()) +
             " entries for " + std::to_string(held) + " ops");
    }
    std::vector<char> seen(held, 0);
    for (std::size_t x = 0; x < plan.order.size() && !o.failed(); ++x) {
      const std::uint32_t oi = plan.order[x];
      if (oi >= held) {
        o.fail("order[" + std::to_string(x) + "] = " + std::to_string(oi) +
               " is out of range");
      } else if (seen[oi] != 0) {
        o.fail("op " + std::to_string(oi) + " appears twice in order[]");
      } else {
        seen[oi] = 1;
      }
    }
    o.finish("ops[] replays the closed-form enumeration (" +
             std::to_string(op_count) + " ops); order[] is a permutation");
  }
  const bool ops_held = held == op_count && plan.order.size() == held;

  // ---- front-order ----------------------------------------------------
  {
    Obligation o(cert, prefix, "front-order", "plan-front-order");
    if (plan.fronts.empty()) o.fail("plan has no wavefronts");
    std::uint32_t expected_begin = 0;
    i64 prev_tick = 0;
    for (std::size_t f = 0; f < plan.fronts.size() && !o.failed(); ++f) {
      const Wavefront& front = plan.fronts[f];
      if (front.begin != expected_begin) {
        o.fail("front " + std::to_string(f) + " begins at " +
               std::to_string(front.begin) + ", expected " +
               std::to_string(expected_begin));
      } else if (front.end <= front.begin) {
        o.fail("front " + std::to_string(f) + " is empty");
      } else if (f > 0 && front.tick <= prev_tick) {
        o.fail("front " + std::to_string(f) + " at tick " +
               std::to_string(front.tick) +
               " does not advance past tick " + std::to_string(prev_tick));
      }
      expected_begin = front.end;
      prev_tick = front.tick;
    }
    if (!o.failed() && expected_begin != held) {
      o.fail("fronts cover [0, " + std::to_string(expected_begin) +
             "), plan has " + std::to_string(held) + " ops");
    }
    if (ops_held) {
      for (const Wavefront& front : plan.fronts) {
        if (o.failed()) break;
        for (std::uint32_t x = front.begin; x < front.end; ++x) {
          if (tick_of[plan.order[x]] != front.tick) {
            o.fail("op " + std::to_string(plan.order[x]) +
                   " sits in the tick-" + std::to_string(front.tick) +
                   " front but its schedule places it at tick " +
                   std::to_string(tick_of[plan.order[x]]));
            break;
          }
        }
      }
    }
    o.finish(std::to_string(plan.fronts.size()) +
             " fronts contiguous with strictly ascending ticks matching the "
             "clustered schedules");
  }

  // ---- fold-discipline ------------------------------------------------
  {
    Obligation o(cert, prefix, "fold-discipline", "plan-fold");
    std::size_t max_folded = 0;
    if (ops_held) {
      // Key = cell coordinates with the tick appended.
      std::unordered_map<IntVec, std::pair<std::uint32_t, std::size_t>,
                         IntVecHash>
          groups;
      groups.reserve(held);
      for (std::uint32_t oi = 0; oi < held && !o.failed(); ++oi) {
        IntVec key(cell_of[oi].dim() + 1);
        for (std::size_t a = 0; a < cell_of[oi].dim(); ++a) {
          key[a] = cell_of[oi][a];
        }
        key[cell_of[oi].dim()] = tick_of[oi];
        auto [it, fresh] = groups.emplace(key, std::make_pair(oi, 0u));
        ++it->second.second;
        max_folded = std::max(max_folded, it->second.second);
        if (!fresh) {
          const COp& head = plan.ops[it->second.first];
          const COp& op = plan.ops[oi];
          if (op.inst != head.inst || op.i != head.i || op.j != head.j) {
            o.fail("ops " + std::to_string(it->second.first) + " and " +
                   std::to_string(oi) +
                   " fold onto one (cell, tick) but belong to different "
                   "(instance, i, j) computations");
          }
        }
      }
      if (!o.failed() && plan.max_folded_ops != max_folded) {
        o.fail("plan.max_folded_ops = " + std::to_string(plan.max_folded_ops) +
               ", recomputed fold high-water is " + std::to_string(max_folded));
      }
    } else {
      o.fail("ops[]/order[] mis-sized; fold groups unverifiable");
    }
    o.finish("every (cell, tick) fold shares one (instance, i, j); "
             "high-water " + std::to_string(max_folded));
  }

  // ---- slot-alias (+ CSR well-formedness) -----------------------------
  const std::size_t slot_count = plan.slot_count;
  bool csr_ok = plan.out_begin.size() == held + 1 &&
                plan.out_payload.size() == plan.out_slot.size();
  if (csr_ok && !plan.out_begin.empty()) {
    csr_ok = plan.out_begin.front() == 0 &&
             plan.out_begin.back() == plan.out_slot.size();
    for (std::size_t i = 1; i < plan.out_begin.size() && csr_ok; ++i) {
      csr_ok = plan.out_begin[i - 1] <= plan.out_begin[i];
    }
  }
  {
    Obligation o(cert, prefix, "slot-alias", "plan-slot-alias");
    if (!csr_ok) o.fail("producer output CSR is malformed");
    std::vector<std::uint32_t> writers(slot_count, 0);
    std::vector<std::uint32_t> readers(slot_count, 0);
    for (const auto& pf : plan.prefill) {
      if (o.failed()) break;
      if (pf.slot >= slot_count) {
        o.fail("prefill slot " + std::to_string(pf.slot) + " out of range");
      } else {
        ++writers[pf.slot];
      }
    }
    if (csr_ok) {
      for (std::size_t t = 0; t < plan.out_slot.size() && !o.failed(); ++t) {
        if (plan.out_slot[t] >= slot_count) {
          o.fail("output slot " + std::to_string(plan.out_slot[t]) +
                 " out of range");
        } else if (plan.out_payload[t] != 'a' && plan.out_payload[t] != 'b' &&
                   plan.out_payload[t] != 'c') {
          o.fail("output payload tag '" +
                 std::string(1, plan.out_payload[t]) + "' is not a/b/c");
        } else {
          ++writers[plan.out_slot[t]];
        }
      }
    }
    for (const COp& op : plan.ops) {
      if (o.failed()) break;
      for (const std::uint32_t slot : {op.in_a, op.in_b, op.in_c, op.in_c2}) {
        if (slot == kNoSlot) continue;
        if (slot >= slot_count) {
          o.fail("operand slot " + std::to_string(slot) + " out of range");
          break;
        }
        ++readers[slot];
      }
    }
    for (std::uint32_t s = 0; s < slot_count && !o.failed(); ++s) {
      if (writers[s] != 1) {
        o.fail("slot " + std::to_string(s) + " has " +
               std::to_string(writers[s]) +
               " writers (prefill + producer outputs), expected exactly 1");
      } else if (readers[s] != 1) {
        o.fail("slot " + std::to_string(s) + " has " +
               std::to_string(readers[s]) + " readers, expected exactly 1");
      }
    }
    o.finish("all " + std::to_string(slot_count) +
             " slots single-writer single-reader; output CSR well-formed");
  }

  // ---- consumer-links (def-before-use replay) -------------------------
  {
    Obligation o(cert, prefix, "consumer-links", "plan-consumer");
    if (!ops_held || !csr_ok) {
      o.fail("ops[]/order[]/CSR mis-sized; execution replay impossible");
    } else {
      std::vector<char> written(slot_count, 0);
      for (const auto& pf : plan.prefill) {
        if (pf.slot < slot_count) written[pf.slot] = 1;
      }
      for (std::size_t x = 0; x < plan.order.size() && !o.failed(); ++x) {
        const std::uint32_t oi = plan.order[x];
        const COp& op = plan.ops[oi];
        for (const std::uint32_t slot :
             {op.in_a, op.in_b, op.in_c, op.in_c2}) {
          if (slot == kNoSlot) continue;
          if (slot >= slot_count || written[slot] == 0) {
            o.fail("op " + std::to_string(oi) + " (execution position " +
                   std::to_string(x) + ") reads slot " + std::to_string(slot) +
                   " before any producer or prefill writes it");
            break;
          }
        }
        for (std::uint32_t t = plan.out_begin[oi]; t < plan.out_begin[oi + 1];
             ++t) {
          if (plan.out_slot[t] < slot_count) written[plan.out_slot[t]] = 1;
        }
      }
    }
    o.finish("execution-order replay: every operand slot written before it "
             "is read");
  }

  // ---- boundary (prefill descriptors) ---------------------------------
  {
    Obligation o(cert, prefix, "boundary", "plan-boundary");
    std::unordered_set<std::uint32_t> slots;
    slots.reserve(plan.prefill.size());
    for (const auto& pf : plan.prefill) {
      if (o.failed()) break;
      if (pf.slot >= slot_count) {
        o.fail("prefill slot " + std::to_string(pf.slot) + " out of range");
      } else if (pf.inst >= instances) {
        o.fail("prefill instance " + std::to_string(pf.inst) +
               " out of range");
      } else if (pf.i < 1 || pf.i >= n) {
        o.fail("prefill init index " + std::to_string(pf.i) +
               " outside [1, n)");
      } else if (!slots.insert(pf.slot).second) {
        o.fail("slot " + std::to_string(pf.slot) + " prefilled twice");
      }
    }
    o.finish(std::to_string(plan.prefill.size()) +
             " prefill descriptors in range and duplicate-free");
  }

  // ---- byte-accounting ------------------------------------------------
  {
    Obligation o(cert, prefix, "byte-accounting", "plan-accounting");
    if (plan.compute_ops != held) {
      o.fail("plan.compute_ops = " + std::to_string(plan.compute_ops) +
             ", ops[] holds " + std::to_string(held));
    }
    if (!o.failed() && ops_held) {
      std::unordered_set<IntVec, IntVecHash> cells(cell_of.begin(),
                                                   cell_of.end());
      if (plan.cell_count != cells.size()) {
        o.fail("plan.cell_count = " + std::to_string(plan.cell_count) +
               ", placements occupy " + std::to_string(cells.size()) +
               " cells");
      }
      if (!o.failed() && held > 0) {
        const auto [lo, hi] =
            std::minmax_element(tick_of.begin(), tick_of.end());
        if (plan.first_tick != *lo || plan.last_tick != *hi) {
          o.fail("tick window [" + std::to_string(plan.first_tick) + ", " +
                 std::to_string(plan.last_tick) +
                 "] does not match the recomputed [" + std::to_string(*lo) +
                 ", " + std::to_string(*hi) + "]");
        }
      }
    }
    if (!o.failed()) {
      const std::size_t expected_bytes =
          plan.ops.size() * sizeof(COp) +
          (plan.order.size() + plan.out_begin.size() + plan.out_slot.size()) *
              sizeof(std::uint32_t) +
          plan.fronts.size() * sizeof(Wavefront) +
          plan.prefill.size() * sizeof(CompiledDPPlan::Prefill) +
          plan.out_payload.size() + 128;
      if (plan.plan_bytes() != expected_bytes) {
        o.fail("plan_bytes() = " + std::to_string(plan.plan_bytes()) +
               ", element counts total " + std::to_string(expected_bytes));
      }
    }
    o.finish("op counts, cell count, tick window and plan_bytes() match "
             "recomputed element counts");
  }
}

// ---------------------------------------------------------------------------
// Tile plans.

void audit_tile_into(const UniformTilePlan& plan, const CanonicRecurrence& rec,
                     const LinearSchedule& timing, const IntMat& space,
                     const Interconnect& net, const std::string& prefix,
                     DesignCertificate& cert) {
  (void)timing;
  (void)space;
  (void)net;
  rec.validate();
  const auto& deps = rec.dependences();
  const std::size_t width = deps.size();
  const auto& domain = rec.domain();
  const std::vector<IntVec> points = domain.points();
  const std::size_t count = points.size();

  const bool sized = plan.cell_of.size() == count &&
                     plan.tick_of.size() == count &&
                     plan.tile_of.size() == count &&
                     plan.kind.size() == count * width;

  // ---- coverage -------------------------------------------------------
  {
    Obligation o(cert, prefix, "coverage", "plan-coverage");
    if (!sized) {
      o.fail("per-point arrays mis-sized: cell_of " +
             std::to_string(plan.cell_of.size()) + ", tick_of " +
             std::to_string(plan.tick_of.size()) + ", tile_of " +
             std::to_string(plan.tile_of.size()) + ", kind " +
             std::to_string(plan.kind.size()) + " for " +
             std::to_string(count) + " points x " + std::to_string(width) +
             " dependences");
    }
    for (std::size_t p = 0; sized && p < count && !o.failed(); ++p) {
      if (plan.tile_of[p] >= plan.tile_count) {
        o.fail("point " + points[p].to_string() + " is assigned tile " +
               std::to_string(plan.tile_of[p]) + " of " +
               std::to_string(plan.tile_count));
      }
    }
    if (!o.failed() && plan.strategy == TileStrategy::kLSGP &&
        plan.tile_count != 1) {
      o.fail("LSGP plan claims " + std::to_string(plan.tile_count) +
             " tiles; clustering serializes onto one");
    }
    o.finish("per-point arrays sized for " + std::to_string(count) +
             " points; tile ids within " + std::to_string(plan.tile_count) +
             " tiles");
  }

  // ---- epoch-disjoint -------------------------------------------------
  {
    Obligation o(cert, prefix, "epoch-disjoint", "tile-epoch");
    if (plan.segments.size() != plan.tile_count) {
      o.fail("plan has " + std::to_string(plan.segments.size()) +
             " tick segments for " + std::to_string(plan.tile_count) +
             " tiles");
    }
    for (std::size_t t = 0; t < plan.segments.size() && !o.failed(); ++t) {
      const auto& [first, last] = plan.segments[t];
      if (first > last) {
        o.fail("segment " + std::to_string(t) + " is empty: [" +
               std::to_string(first) + ", " + std::to_string(last) + "]");
      } else if (t > 0 && first <= plan.segments[t - 1].second) {
        o.fail("segment " + std::to_string(t) + " starts at tick " +
               std::to_string(first) + " inside segment " +
               std::to_string(t - 1) + "'s epoch (ends " +
               std::to_string(plan.segments[t - 1].second) +
               "): tile epochs overlap");
      }
    }
    for (std::size_t p = 0; sized && p < count && !o.failed(); ++p) {
      if (plan.tile_of[p] >= plan.segments.size()) continue;  // coverage.
      const auto& [first, last] = plan.segments[plan.tile_of[p]];
      if (plan.tick_of[p] < first || plan.tick_of[p] > last) {
        o.fail("point " + points[p].to_string() + " fires at tick " +
               std::to_string(plan.tick_of[p]) + " outside its tile's epoch [" +
               std::to_string(first) + ", " + std::to_string(last) + "]");
      }
    }
    if (!o.failed() && !plan.segments.empty() &&
        (plan.first_tick != plan.segments.front().first ||
         plan.last_tick != plan.segments.back().second)) {
      o.fail("tick window [" + std::to_string(plan.first_tick) + ", " +
             std::to_string(plan.last_tick) +
             "] does not match the segment span");
    }
    o.finish(std::to_string(plan.segments.size()) +
             " tile epochs disjoint and ascending; every point inside its "
             "tile's epoch");
  }

  // Producer index of every in-domain (point, dep) instance.
  std::unordered_map<IntVec, std::uint32_t, IntVecHash> pos;
  pos.reserve(count);
  for (std::uint32_t p = 0; p < count; ++p) pos.emplace(points[p], p);

  // ---- tile-order -----------------------------------------------------
  {
    Obligation o(cert, prefix, "tile-order", "tile-order");
    if (!sized) o.fail("per-point arrays mis-sized; order unverifiable");
    for (std::uint32_t p = 0; sized && p < count && !o.failed(); ++p) {
      for (std::size_t d = 0; d < width && !o.failed(); ++d) {
        const IntVec producer = points[p] - deps[d].vector;
        if (!domain.contains(producer)) continue;
        const std::uint32_t q = pos.at(producer);
        if (plan.tile_of[q] > plan.tile_of[p]) {
          o.fail("'" + deps[d].variable + "' flows backward from tile " +
                 std::to_string(plan.tile_of[q]) + " (" +
                 producer.to_string() + ") to tile " +
                 std::to_string(plan.tile_of[p]) + " (" +
                 points[p].to_string() +
                 "): the tile execution order is not topological");
        }
      }
    }
    o.finish("every inter-tile dependence flows forward in execution order "
             "(the schedule is its own acyclicity witness)");
  }

  // ---- classification -------------------------------------------------
  {
    Obligation o(cert, prefix, "classification", "tile-class");
    std::vector<TileBufferedValue> expected_buffered;
    if (!sized) o.fail("per-point arrays mis-sized; kinds unverifiable");
    for (std::uint32_t p = 0; sized && p < count && !o.failed(); ++p) {
      for (std::size_t d = 0; d < width && !o.failed(); ++d) {
        const IntVec producer = points[p] - deps[d].vector;
        TileDepKind expected_kind = TileDepKind::kBoundary;
        if (domain.contains(producer)) {
          const std::uint32_t q = pos.at(producer);
          expected_kind = plan.tile_of[p] == plan.tile_of[q]
                              ? TileDepKind::kLocal
                              : TileDepKind::kBuffered;
          if (expected_kind == TileDepKind::kBuffered) {
            expected_buffered.push_back(
                {q, p, static_cast<std::uint32_t>(d)});
          }
        }
        if (plan.kind[p * width + d] != expected_kind) {
          o.fail("operand " + at_var(deps[d].variable, p) +
                 " is classified kind " +
                 std::to_string(static_cast<int>(plan.kind[p * width + d])) +
                 ", recomputation says " +
                 std::to_string(static_cast<int>(expected_kind)));
        }
      }
    }
    if (!o.failed() && sized) {
      std::sort(expected_buffered.begin(), expected_buffered.end(),
                [&](const TileBufferedValue& a, const TileBufferedValue& b) {
                  return std::tuple(plan.tile_of[a.consumer], a.consumer,
                                    a.var) <
                         std::tuple(plan.tile_of[b.consumer], b.consumer,
                                    b.var);
                });
      if (plan.buffered.size() != expected_buffered.size()) {
        o.fail("buffered list holds " + std::to_string(plan.buffered.size()) +
               " values, recomputation finds " +
               std::to_string(expected_buffered.size()));
      }
      for (std::size_t i = 0;
           !o.failed() && i < expected_buffered.size(); ++i) {
        const auto& a = plan.buffered[i];
        const auto& e = expected_buffered[i];
        if (a.producer != e.producer || a.consumer != e.consumer ||
            a.var != e.var) {
          o.fail("buffered[" + std::to_string(i) +
                 "] does not match the recomputed (consumer tile, consumer, "
                 "var)-sorted crossing list");
        }
      }
    }
    o.finish("kind[] and the buffered list match the recomputed "
             "boundary/local/buffered split");
  }

  // ---- tile-depth -----------------------------------------------------
  {
    Obligation o(cert, prefix, "tile-depth", "tile-depth");
    if (plan.options.buffer_depth < 1) {
      o.fail("buffer depth " + std::to_string(plan.options.buffer_depth) +
             " is not positive");
    }
    std::size_t reuse = 0, refeeds = 0;
    i64 max_distance = 0;
    for (const auto& value : plan.buffered) {
      if (o.failed()) break;
      if (!sized || value.producer >= count || value.consumer >= count) {
        o.fail("buffered value references an out-of-range point");
        break;
      }
      const i64 distance = static_cast<i64>(plan.tile_of[value.consumer]) -
                           static_cast<i64>(plan.tile_of[value.producer]);
      max_distance = std::max(max_distance, distance);
      if (distance <= plan.options.buffer_depth - 1) {
        ++reuse;
      } else {
        ++refeeds;
      }
    }
    if (!o.failed() && (plan.buffer_stats.reuse_hits != reuse ||
                        plan.buffer_stats.refeeds != refeeds)) {
      o.fail("ledger claims " + std::to_string(plan.buffer_stats.reuse_hits) +
             " reuse hits / " + std::to_string(plan.buffer_stats.refeeds) +
             " refeeds; depth " + std::to_string(plan.options.buffer_depth) +
             " implies " + std::to_string(reuse) + " / " +
             std::to_string(refeeds) +
             " — the configured depth does not match the ledger");
    }
    if (!o.failed() && plan.buffer_stats.max_tile_distance != max_distance) {
      o.fail("ledger max tile distance " +
             std::to_string(plan.buffer_stats.max_tile_distance) +
             ", recomputed " + std::to_string(max_distance));
    }
    o.record().determinant = max_distance;
    o.finish("reuse/refeed split matches depth " +
             std::to_string(plan.options.buffer_depth) +
             " (max crossing distance " + std::to_string(max_distance) + ")");
  }

  // ---- buffer-ledger --------------------------------------------------
  {
    Obligation o(cert, prefix, "buffer-ledger", "tile-ledger");
    if (plan.buffer_stats.buffered_values != plan.buffered.size()) {
      o.fail("ledger counts " +
             std::to_string(plan.buffer_stats.buffered_values) +
             " buffered values, list holds " +
             std::to_string(plan.buffered.size()));
    }
    if (!o.failed() && sized) {
      std::map<std::pair<std::uint32_t, std::uint32_t>, std::size_t> edges;
      std::vector<std::pair<i64, int>> events;
      events.reserve(plan.buffered.size() * 2);
      bool in_range = true;
      for (const auto& value : plan.buffered) {
        if (value.producer >= count || value.consumer >= count) {
          in_range = false;
          break;
        }
        ++edges[{plan.tile_of[value.producer], plan.tile_of[value.consumer]}];
        events.emplace_back(plan.tick_of[value.producer], +1);
        events.emplace_back(plan.tick_of[value.consumer], -1);
      }
      if (!in_range) {
        o.fail("buffered value references an out-of-range point");
      } else {
        std::size_t bytes = 0;
        for (const auto& [edge, n] : edges) bytes += 2 * sizeof(i64) * n;
        std::sort(events.begin(), events.end());
        std::size_t live = 0, high_water = 0;
        for (const auto& [tick, delta] : events) {
          if (delta < 0) {
            --live;
          } else {
            ++live;
            high_water = std::max(high_water, live);
          }
        }
        if (plan.buffer_stats.edges != edges.size()) {
          o.fail("ledger counts " + std::to_string(plan.buffer_stats.edges) +
                 " boundary edges, recomputed " +
                 std::to_string(edges.size()));
        } else if (plan.buffer_stats.buffer_bytes != bytes) {
          o.fail("ledger sizes the double-buffered edges at " +
                 std::to_string(plan.buffer_stats.buffer_bytes) +
                 " bytes, recomputed " + std::to_string(bytes));
        } else if (plan.buffer_stats.high_water != high_water) {
          o.fail("ledger residency high-water " +
                 std::to_string(plan.buffer_stats.high_water) +
                 ", recomputed " + std::to_string(high_water));
        }
      }
    }
    o.finish("buffered-value counts, edges, buffer bytes and residency "
             "high-water match the recomputed ledger");
  }

  // ---- window ---------------------------------------------------------
  {
    Obligation o(cert, prefix, "window", "tile-window");
    const std::size_t budget = static_cast<std::size_t>(
        checked_mul(plan.options.rows, plan.options.cols));
    if (plan.window_cells.empty()) {
      o.fail("plan has no window cells");
    } else if (plan.window_cells.size() > budget) {
      o.fail("window holds " + std::to_string(plan.window_cells.size()) +
             " cells, the " + std::to_string(plan.options.rows) + "x" +
             std::to_string(plan.options.cols) + " array has " +
             std::to_string(budget));
    }
    std::unordered_set<IntVec, IntVecHash> window(plan.window_cells.begin(),
                                                  plan.window_cells.end());
    if (!o.failed() && window.size() != plan.window_cells.size()) {
      o.fail("window lists a cell twice");
    }
    for (std::size_t p = 0; sized && p < count && !o.failed(); ++p) {
      if (window.find(plan.cell_of[p]) == window.end()) {
        o.fail("point " + points[p].to_string() + " is placed on cell " +
               plan.cell_of[p].to_string() + " outside the physical window");
      }
    }
    o.finish("window of " + std::to_string(plan.window_cells.size()) +
             " cells within the " + std::to_string(budget) +
             "-cell budget; every placement inside it");
  }
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

bool PlanAuditReport::ok() const { return violated() == 0; }

std::size_t PlanAuditReport::certified() const {
  return certificate.count(ObligationStatus::kCertified);
}

std::size_t PlanAuditReport::violated() const {
  return certificate.count(ObligationStatus::kViolated);
}

std::string PlanAuditReport::first_violation() const {
  for (const auto& o : certificate.obligations) {
    if (o.status == ObligationStatus::kViolated) {
      return o.id + ": " + o.detail;
    }
  }
  return {};
}

std::string PlanAuditReport::summary() const {
  std::ostringstream os;
  os << certificate.design << ": " << certificate.obligations.size()
     << " obligation(s), " << certified() << " certified, " << violated()
     << " violated";
  if (!ok()) os << " — " << first_violation();
  return std::move(os).str();
}

JsonValue PlanAuditReport::to_json() const {
  JsonValue doc;
  doc.set("design", certificate.design);
  doc.set("ok", ok());
  doc.set("obligations", static_cast<i64>(certificate.obligations.size()));
  doc.set("certified", static_cast<i64>(certified()));
  doc.set("violated", static_cast<i64>(violated()));
  doc.set("wall_seconds", wall_seconds);
  doc.set("certificate", certificate_to_json(certificate));
  return doc;
}

PlanAuditReport audit_uniform_plan(const CompiledUniformPlan& plan,
                                   const CanonicRecurrence& rec,
                                   const LinearSchedule& timing,
                                   const IntMat& space, const Interconnect& net,
                                   const std::string& label) {
  const auto start = std::chrono::steady_clock::now();
  PlanAuditReport report;
  report.certificate.design = label;
  audit_uniform_into(plan, rec, timing, space, net, "plan/" + label,
                     report.certificate);
  report.wall_seconds = seconds_since(start);
  return report;
}

PlanAuditReport audit_dp_plan(const detail::CompiledDPPlan& plan,
                              const DPArrayDesign& design, i64 period,
                              const std::string& label) {
  const auto start = std::chrono::steady_clock::now();
  PlanAuditReport report;
  report.certificate.design = label;
  audit_dp_into(plan, design, period, "plan/" + label, report.certificate);
  report.wall_seconds = seconds_since(start);
  return report;
}

PlanAuditReport audit_tile_plan(const UniformTilePlan& plan,
                                const CanonicRecurrence& rec,
                                const LinearSchedule& timing,
                                const IntMat& space, const Interconnect& net,
                                const std::string& label) {
  const auto start = std::chrono::steady_clock::now();
  PlanAuditReport report;
  report.certificate.design = label;
  audit_tile_into(plan, rec, timing, space, net, "tile/" + label,
                  report.certificate);
  report.wall_seconds = seconds_since(start);
  return report;
}

}  // namespace nusys
