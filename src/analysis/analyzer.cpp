#include "analysis/analyzer.hpp"

#include <cstdlib>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>

#include "analysis/polytope.hpp"
#include "analysis/rational_lp.hpp"
#include "modules/module_schedule.hpp"
#include "modules/module_space.hpp"
#include "space/routing.hpp"
#include "support/env.hpp"
#include "support/telemetry.hpp"
#include "verify/module_spacetime.hpp"

namespace nusys {

namespace {

const char* violation_kind_name(Violation::Kind kind) {
  switch (kind) {
    case Violation::Kind::kCausality:
      return "causality";
    case Violation::Kind::kConflict:
      return "conflict";
    case Violation::Kind::kUnroutable:
      return "unroutable";
    case Violation::Kind::kLinkOverload:
      return "link-overload";
  }
  return "?";
}

/// RoutabilityCache::routable semantics without the cache.
bool routable(const Interconnect& net, const IntVec& displacement,
              i64 slack) {
  if (slack < 0) return false;
  if (displacement.is_zero()) return true;
  return route_displacement(net, displacement, slack).has_value();
}

/// Inequalities of  p - shift ∈ polytope, expressed over p.
std::vector<AffineInequality> shifted_inequalities(
    const std::vector<AffineInequality>& base, const IntVec& shift) {
  std::vector<AffineInequality> out;
  out.reserve(base.size());
  for (const auto& q : base) {
    out.push_back({q.coeffs, checked_sub(q.constant, q.coeffs.dot(shift))});
  }
  return out;
}

/// The firing margin of one global statement as an affine form over the
/// consumer point:  t_c·p + o_c - (t_p·(A·p + b) + o_p).
void global_margin(const GlobalDep& g,
                   const std::vector<LinearSchedule>& schedules,
                   IntVec* coeffs, i64* constant) {
  const LinearSchedule& tc = schedules[g.consumer];
  const LinearSchedule& tp = schedules[g.producer];
  const IntMat& a = g.producer_point.matrix();
  const IntVec& b = g.producer_point.offset();
  IntVec c(tc.dim());
  for (std::size_t k = 0; k < tc.dim(); ++k) {
    i64 v = tc.coeffs()[k];
    for (std::size_t r = 0; r < a.rows(); ++r) {
      v = checked_sub(v, checked_mul(tp.coeffs()[r], a(r, k)));
    }
    c[k] = v;
  }
  *coeffs = std::move(c);
  *constant = checked_sub(checked_sub(tc.offset(), tp.coeffs().dot(b)),
                          tp.offset());
}

/// The displacement of one global statement as an affine vector map:
/// disp(p) = S_c·p - S_p·(A·p + b).
struct AffineVecMap {
  IntMat matrix;
  IntVec offset;

  [[nodiscard]] IntVec apply(const IntVec& p) const {
    return matrix * p + offset;
  }
};

AffineVecMap global_displacement(const GlobalDep& g,
                                 const std::vector<IntMat>& spaces) {
  const IntMat sp_a = spaces[g.producer] * g.producer_point.matrix();
  return {spaces[g.consumer] - sp_a,
          -(spaces[g.producer] * g.producer_point.offset())};
}

/// True when  row·x  is constant on the affine hull of the facets'
/// equalities (row is a rational combination of the equality normals).
bool constant_on_hull(const DomainFacets& facets, const IntVec& row) {
  if (row.is_zero()) return true;
  if (facets.equalities.empty()) return false;
  const std::size_t m = facets.equalities.size();
  FracMat a(facets.dim, FracVec(m));
  FracVec b(facets.dim);
  for (std::size_t k = 0; k < facets.dim; ++k) {
    for (std::size_t i = 0; i < m; ++i) {
      a[k][i] = Fraction(facets.equalities[i].coeffs[k]);
    }
    b[k] = Fraction(row[k]);
  }
  return solve_rational_system(a, b).has_value();
}

/// The transformation Π = [t; S] of one module as a matrix.
IntMat pi_matrix(const LinearSchedule& t, const IntMat& s) {
  std::vector<IntVec> rows;
  rows.reserve(1 + s.rows());
  rows.push_back(t.coeffs());
  for (std::size_t r = 0; r < s.rows(); ++r) rows.push_back(s.row(r));
  return IntMat::from_rows(rows);
}

/// A row subset of `m` of size m.cols() with nonzero determinant, plus
/// that determinant; nullopt when no subset has full rank.
std::optional<std::pair<std::vector<std::size_t>, i64>> independent_rows(
    const IntMat& m) {
  const std::size_t need = m.cols();
  if (need == 0) return std::make_pair(std::vector<std::size_t>{}, i64{1});
  if (m.rows() < need) return std::nullopt;
  std::vector<std::size_t> idx(need);
  for (std::size_t i = 0; i < need; ++i) idx[i] = i;
  for (;;) {
    IntMat sub(need, need);
    for (std::size_t r = 0; r < need; ++r) {
      for (std::size_t c = 0; c < need; ++c) sub(r, c) = m(idx[r], c);
    }
    const i64 det = sub.determinant();
    if (det != 0) return std::make_pair(idx, det);
    // Next combination in lexicographic order.
    std::size_t i = need;
    while (i > 0) {
      --i;
      if (idx[i] + (need - i) < m.rows()) {
        ++idx[i];
        for (std::size_t j = i + 1; j < need; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return std::nullopt;
    }
  }
}

/// Determinant of the stored row subset of `m`; nullopt on a malformed
/// subset (wrong arity, out of range, repeated row).
std::optional<i64> subset_determinant(const IntMat& m,
                                      const std::vector<std::size_t>& rows) {
  if (rows.size() != m.cols()) return std::nullopt;
  std::set<std::size_t> seen;
  for (const std::size_t r : rows) {
    if (r >= m.rows() || !seen.insert(r).second) return std::nullopt;
  }
  IntMat sub(rows.size(), rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < rows.size(); ++c) sub(r, c) = m(rows[r], c);
  }
  return sub.determinant();
}

IntVec embed_pair(const IntVec& v, std::size_t n, bool second) {
  IntVec out(2 * n);
  for (std::size_t k = 0; k < n; ++k) out[(second ? n : 0) + k] = v[k];
  return out;
}

/// The slot-coincidence polytope of two modules over (p, q) ∈ Z^{2n}:
/// both domains plus  t_a(p) = t_b(q)  and  S_a·p = S_b·q  as half-space
/// pairs. Rational emptiness proves the modules never share a slot.
std::vector<AffineInequality> pair_polytope(
    const DomainFacets& fa, const DomainFacets& fb, const LinearSchedule& ta,
    const LinearSchedule& tb, const IntMat& sa, const IntMat& sb) {
  const std::size_t n = fa.dim;
  std::vector<AffineInequality> out;
  for (const auto& q : fa.inequalities) {
    out.push_back({embed_pair(q.coeffs, n, false), q.constant});
  }
  for (const auto& q : fb.inequalities) {
    out.push_back({embed_pair(q.coeffs, n, true), q.constant});
  }
  const auto add_equality = [&out](const IntVec& coeffs, i64 constant) {
    out.push_back({coeffs, constant});
    out.push_back({-coeffs, checked_mul(constant, -1)});
  };
  IntVec tv = embed_pair(ta.coeffs(), n, false) -
              embed_pair(tb.coeffs(), n, true);
  add_equality(tv, checked_sub(ta.offset(), tb.offset()));
  for (std::size_t r = 0; r < sa.rows(); ++r) {
    add_equality(embed_pair(sa.row(r), n, false) -
                     embed_pair(sb.row(r), n, true),
                 0);
  }
  return out;
}

/// Relation rows for the fold-rule rowspan certificate, over the combined
/// coordinates (p, q, 1): every relation vanishes whenever p ∈ hull(D_a),
/// q ∈ hull(D_b) and the two computations share a slot.
std::vector<IntVec> fold_relation_rows(const DomainFacets& fa,
                                       const DomainFacets& fb,
                                       const LinearSchedule& ta,
                                       const LinearSchedule& tb,
                                       const IntMat& sa, const IntMat& sb) {
  const std::size_t n = fa.dim;
  const auto widen = [n](const IntVec& v, i64 constant) {
    IntVec out(2 * n + 1);
    for (std::size_t k = 0; k < 2 * n; ++k) out[k] = v[k];
    out[2 * n] = constant;
    return out;
  };
  std::vector<IntVec> rows;
  rows.push_back(widen(embed_pair(ta.coeffs(), n, false) -
                           embed_pair(tb.coeffs(), n, true),
                       checked_sub(ta.offset(), tb.offset())));
  for (std::size_t r = 0; r < sa.rows(); ++r) {
    rows.push_back(widen(embed_pair(sa.row(r), n, false) -
                             embed_pair(sb.row(r), n, true),
                         0));
  }
  for (const auto& eq : fa.equalities) {
    rows.push_back(widen(embed_pair(eq.coeffs, n, false), eq.constant));
  }
  for (const auto& eq : fb.equalities) {
    rows.push_back(widen(embed_pair(eq.coeffs, n, true), eq.constant));
  }
  return rows;
}

/// Target rows of the fold certificate: F(p) - F(q), one per fold-key
/// output (offsets cancel on the difference).
std::vector<IntVec> fold_target_rows(const AffineMap& fold, std::size_t n) {
  std::vector<IntVec> rows;
  rows.reserve(fold.output_dim());
  for (std::size_t r = 0; r < fold.output_dim(); ++r) {
    IntVec row(2 * n + 1);
    for (std::size_t k = 0; k < n; ++k) {
      row[k] = fold.matrix()(r, k);
      row[n + k] = checked_mul(fold.matrix()(r, k), -1);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

/// Exact check that `combination` expresses every fold target row as a
/// rational combination of the relation rows.
bool check_fold_combination(const std::vector<IntVec>& relations,
                            const std::vector<IntVec>& targets,
                            const FracMat& combination) {
  if (combination.size() != targets.size()) return false;
  const std::size_t width = relations.empty() ? 0 : relations[0].dim();
  for (std::size_t t = 0; t < targets.size(); ++t) {
    if (combination[t].size() != relations.size()) return false;
    for (std::size_t k = 0; k < width; ++k) {
      Fraction sum;
      for (std::size_t j = 0; j < relations.size(); ++j) {
        sum += combination[t][j] * Fraction(relations[j][k]);
      }
      if (sum != Fraction(targets[t][k])) return false;
    }
  }
  return true;
}

/// Solves the fold rowspan system; nullopt when some target row is not in
/// the rational span of the relations.
std::optional<FracMat> solve_fold_combination(
    const std::vector<IntVec>& relations,
    const std::vector<IntVec>& targets) {
  if (relations.empty()) return std::nullopt;
  const std::size_t width = relations[0].dim();
  FracMat a(width, FracVec(relations.size()));
  for (std::size_t k = 0; k < width; ++k) {
    for (std::size_t j = 0; j < relations.size(); ++j) {
      a[k][j] = Fraction(relations[j][k]);
    }
  }
  FracMat combination;
  for (const auto& target : targets) {
    FracVec b(width);
    for (std::size_t k = 0; k < width; ++k) b[k] = Fraction(target[k]);
    auto c = solve_rational_system(a, b);
    if (!c) return std::nullopt;
    combination.push_back(std::move(*c));
  }
  return combination;
}

/// Swallows arithmetic overflow inside a certificate attempt: an overflow
/// only ever downgrades an obligation to the enumeration fallback.
template <typename F>
auto attempt(F&& f) -> decltype(f()) {
  try {
    return f();
  } catch (const Error&) {
    return {};
  }
}

bool paranoid_revalidate_env() {
  return env_flag("NUSYS_PARANOID_REVALIDATE");
}

// ---------------------------------------------------------------------------
// Exact per-obligation enumeration fallbacks. Each mirrors one loop of the
// extensional verifiers, with early exit on the first witness.

std::optional<std::string> find_collision(const std::string& name,
                                          const IndexDomain& domain,
                                          const LinearSchedule& t,
                                          const IntMat& s) {
  std::set<std::pair<IntVec, i64>> own;
  std::optional<std::string> hit;
  domain.for_each([&](const IntVec& p) {
    if (hit) return;
    const auto slot = std::make_pair(s * p, t.at(p));
    if (!own.insert(slot).second) {
      std::ostringstream os;
      os << name << ' ' << p << " collides with another " << name
         << " computation at cell " << slot.first << ", tick " << slot.second;
      hit = os.str();
    }
  });
  return hit;
}

std::optional<std::string> find_pair_collision(
    const ModuleSystem& sys, std::size_t a, std::size_t b,
    const std::vector<LinearSchedule>& schedules,
    const std::vector<IntMat>& spaces) {
  std::map<std::pair<IntVec, i64>, IntVec> slots;
  sys.module(a).domain.for_each([&](const IntVec& p) {
    const IntVec key = sys.fold_key() ? sys.fold_key()->apply(p) : p;
    slots.emplace(std::make_pair(spaces[a] * p, schedules[a].at(p)), key);
  });
  std::optional<std::string> hit;
  sys.module(b).domain.for_each([&](const IntVec& q) {
    if (hit) return;
    const auto it =
        slots.find(std::make_pair(spaces[b] * q, schedules[b].at(q)));
    if (it == slots.end()) return;
    const IntVec key = sys.fold_key() ? sys.fold_key()->apply(q) : q;
    if (!sys.fold_key() || it->second != key) {
      std::ostringstream os;
      os << sys.module(b).name << ' ' << q << " shares a slot with module '"
         << sys.module(a).name << "' serving a different fold key";
      hit = os.str();
    }
  });
  return hit;
}

std::optional<std::string> find_global_causality_violation(
    const GlobalDep& g, const std::vector<LinearSchedule>& schedules) {
  const i64 required = g.allow_equal_time ? 0 : 1;
  std::optional<std::string> hit;
  g.guard.for_each([&](const IntVec& p) {
    if (hit) return;
    const IntVec q = g.producer_point.apply(p);
    const i64 slack =
        checked_sub(schedules[g.consumer].at(p), schedules[g.producer].at(q));
    if (slack < required) {
      std::ostringstream os;
      os << g.name << " at " << p << ": consumer fires at slack " << slack
         << " relative to its producer";
      hit = os.str();
    }
  });
  return hit;
}

/// Verifier semantics: route checked only at causal guard points.
std::optional<std::string> find_global_route_violation(
    const GlobalDep& g, const std::vector<LinearSchedule>& schedules,
    const std::vector<IntMat>& spaces, const Interconnect& net) {
  std::optional<std::string> hit;
  g.guard.for_each([&](const IntVec& p) {
    if (hit) return;
    const IntVec q = g.producer_point.apply(p);
    const i64 slack =
        checked_sub(schedules[g.consumer].at(p), schedules[g.producer].at(q));
    if (g.allow_equal_time ? slack < 0 : slack <= 0) return;
    const IntVec disp = spaces[g.consumer] * p - spaces[g.producer] * q;
    if (!routable(net, disp, slack)) {
      std::ostringstream os;
      os << g.name << " at " << p << ": displacement " << disp
         << " unreachable in " << slack << " tick(s)";
      hit = os.str();
    }
  });
  return hit;
}

/// Oracle semantics (spaces_satisfy): any negative slack fails, and the
/// route must fit the point's own slack everywhere.
bool oracle_global_route_ok(const GlobalDep& g,
                            const std::vector<LinearSchedule>& schedules,
                            const std::vector<IntMat>& spaces,
                            const Interconnect& net) {
  bool ok = true;
  g.guard.for_each([&](const IntVec& p) {
    if (!ok) return;
    const IntVec q = g.producer_point.apply(p);
    const i64 slack =
        checked_sub(schedules[g.consumer].at(p), schedules[g.producer].at(q));
    if (slack < 0) {
      ok = false;
      return;
    }
    const IntVec disp = spaces[g.consumer] * p - spaces[g.producer] * q;
    if (!routable(net, disp, slack)) ok = false;
  });
  return ok;
}

// ---------------------------------------------------------------------------
// Report assembly.

struct Builder {
  AnalysisReport* report;

  ObligationRecord& add(std::string id, std::string kind) {
    ObligationRecord o;
    o.id = std::move(id);
    o.kind = std::move(kind);
    report->certificate.obligations.push_back(std::move(o));
    return report->certificate.obligations.back();
  }

  void certify(ObligationRecord& o, std::string detail) {
    o.status = ObligationStatus::kCertified;
    o.detail = std::move(detail);
    ++report->certified;
  }

  void enumerated(ObligationRecord& o, std::string detail) {
    o.status = ObligationStatus::kEnumerated;
    o.detail = std::move(detail);
    ++report->enumerated;
  }

  void violate(ObligationRecord& o, Violation::Kind kind,
               std::string detail) {
    o.status = ObligationStatus::kViolated;
    o.detail = detail;
    report->violations.push_back({kind, std::move(detail)});
  }
};

/// Shared analysis of one global statement's causality; returns the
/// rational margin minimum when (and only when) it was certified by LP.
std::optional<Fraction> analyze_global_causality(
    Builder& b, ObligationRecord& o, const GlobalDep& g,
    const std::vector<LinearSchedule>& schedules,
    const DomainFacets& guard) {
  const i64 required = g.allow_equal_time ? 0 : 1;
  IntVec margin;
  i64 margin_constant = 0;
  global_margin(g, schedules, &margin, &margin_constant);

  const auto bound = attempt([&] {
    return prove_lower_bound(guard.inequalities, margin, margin_constant);
  });
  if (bound) {
    if (ceil_fraction(bound->bound) >= required) {
      o.bound = *bound;
      b.certify(o, g.name + ": margin >= " + bound->bound.to_string() +
                       " over the guard polytope");
      return bound->bound;
    }
  } else {
    const auto empty =
        attempt([&] { return prove_empty(guard.inequalities); });
    if (empty) {
      o.empty = *empty;
      b.certify(o, g.name + ": guard polytope is empty");
      return std::nullopt;
    }
  }
  if (auto hit = find_global_causality_violation(g, schedules)) {
    b.violate(o, Violation::Kind::kCausality, *hit);
  } else {
    b.enumerated(o, g.name + ": margin verified by guard enumeration");
  }
  return std::nullopt;
}

/// Shared analysis of one global statement's routability. `oracle_rule`
/// selects the spaces_satisfy semantics instead of the verifier's.
void analyze_global_route(Builder& b, ObligationRecord& o, const GlobalDep& g,
                          const std::vector<LinearSchedule>& schedules,
                          const std::vector<IntMat>& spaces,
                          const Interconnect& net, const DomainFacets& guard,
                          const std::optional<Fraction>& margin_min,
                          const ObligationRecord& causality,
                          std::size_t witness_budget, bool oracle_rule) {
  // A guard proven empty makes every route obligation vacuous.
  if (causality.status == ObligationStatus::kCertified && causality.empty) {
    o.empty = causality.empty;
    b.certify(o, g.name + ": vacuous (empty guard)");
    return;
  }
  const auto fall_back = [&] {
    if (oracle_rule) {
      if (oracle_global_route_ok(g, schedules, spaces, net)) {
        b.enumerated(o, g.name + ": routes verified by guard enumeration");
      } else {
        b.violate(o, Violation::Kind::kUnroutable,
                  g.name + ": unroutable at some guard point");
      }
      return;
    }
    if (auto hit = find_global_route_violation(g, schedules, spaces, net)) {
      b.violate(o, Violation::Kind::kUnroutable, *hit);
    } else {
      b.enumerated(o, g.name + ": routes verified by guard enumeration");
    }
  };

  if (!margin_min) {
    fall_back();
    return;
  }
  const i64 min_slack = ceil_fraction(*margin_min);
  if (min_slack < 0) {
    fall_back();
    return;
  }
  const auto witness = find_integer_point(g.guard, witness_budget);
  if (!witness.point) {
    if (witness.exhausted) {
      b.enumerated(o, g.name + ": guard has no integer points");
    } else {
      fall_back();
    }
    return;
  }
  const auto disp_map =
      attempt([&]() -> std::optional<AffineVecMap> {
        return global_displacement(g, spaces);
      });
  if (!disp_map) {
    fall_back();
    return;
  }
  for (std::size_t r = 0; r < disp_map->matrix.rows(); ++r) {
    if (!constant_on_hull(guard, disp_map->matrix.row(r))) {
      fall_back();
      return;
    }
  }
  const IntVec disp = disp_map->apply(*witness.point);
  const auto route = route_displacement(net, disp, min_slack);
  if (!route) {
    fall_back();
    return;
  }
  o.bound = causality.bound;
  o.route = route->hops_per_link;
  o.displacement = disp;
  o.witness = witness.point;
  b.certify(o, g.name + ": constant displacement " + disp.to_string() +
                   " routed in " + std::to_string(route->total_hops) +
                   " hop(s) within certified slack " +
                   std::to_string(min_slack));
}

void analyze_injectivity(Builder& b, ObligationRecord& o,
                         const std::string& name, const IndexDomain& domain,
                         const LinearSchedule& t, const IntMat& s,
                         const DomainFacets& facets) {
  const auto outcome = attempt(
      [&]() -> std::optional<std::pair<std::vector<IntVec>,
                                       std::pair<std::vector<std::size_t>,
                                                 i64>>> {
        const auto kernel = equality_kernel_basis(facets);
        if (kernel.empty()) {
          return std::make_pair(kernel,
                                std::make_pair(std::vector<std::size_t>{},
                                               i64{1}));
        }
        const IntMat m =
            pi_matrix(t, s) * IntMat::from_columns(kernel);
        const auto rows = independent_rows(m);
        if (!rows) return std::nullopt;
        return std::make_pair(kernel, *rows);
      });
  if (outcome) {
    o.kernel = outcome->first;
    o.rows = outcome->second.first;
    o.determinant = outcome->second.second;
    b.certify(o, name + ": [t; S] injective on the domain lattice (" +
                     std::to_string(o.kernel.size()) +
                     "-dim difference lattice, subdeterminant " +
                     std::to_string(*o.determinant) + ")");
    return;
  }
  if (auto hit = find_collision(name, domain, t, s)) {
    b.violate(o, Violation::Kind::kConflict, *hit);
  } else {
    b.enumerated(o, name + ": exclusivity verified by enumeration");
  }
}

void analyze_pair_exclusivity(Builder& b, ObligationRecord& o,
                              const ModuleSystem& sys, std::size_t ma,
                              std::size_t mb,
                              const std::vector<LinearSchedule>& schedules,
                              const std::vector<IntMat>& spaces,
                              const DomainFacets& fa,
                              const DomainFacets& fb) {
  const std::string label =
      sys.module(ma).name + " / " + sys.module(mb).name;
  if (sys.fold_key()) {
    const auto combination = attempt([&] {
      return solve_fold_combination(
          fold_relation_rows(fa, fb, schedules[ma], schedules[mb],
                             spaces[ma], spaces[mb]),
          fold_target_rows(*sys.fold_key(), sys.dim()));
    });
    if (combination) {
      o.combination = *combination;
      b.certify(o, label +
                       ": slot coincidence forces equal fold keys "
                       "(rowspan certificate)");
      return;
    }
  }
  const auto empty = attempt([&] {
    return prove_empty(pair_polytope(fa, fb, schedules[ma], schedules[mb],
                                     spaces[ma], spaces[mb]));
  });
  if (empty) {
    o.empty = *empty;
    b.certify(o, label + ": the modules never share a (cell, tick) slot");
    return;
  }
  if (auto hit = find_pair_collision(sys, ma, mb, schedules, spaces)) {
    b.violate(o, Violation::Kind::kConflict, *hit);
  } else {
    b.enumerated(o, label + ": fold rule verified by enumeration");
  }
}

}  // namespace

std::size_t AnalysisReport::count(Violation::Kind kind) const {
  std::size_t c = 0;
  for (const auto& v : violations) {
    if (v.kind == kind) ++c;
  }
  return c;
}

std::string AnalysisReport::summary() const {
  std::ostringstream os;
  os << "analysis: " << certificate.obligations.size() << " obligation(s), "
     << certified << " certified, " << enumerated << " enumerated, "
     << certificate.count(ObligationStatus::kViolated) << " violated; "
     << (ok() ? "verdict OK" : "verdict FAIL");
  return os.str();
}

JsonValue AnalysisReport::to_json() const {
  JsonValue doc;
  doc.set("design", certificate.design);
  doc.set("verdict", ok() ? "ok" : "fail");
  doc.set("obligations", certificate.obligations.size());
  doc.set("certified", certified);
  doc.set("enumerated", enumerated);
  doc.set("wall_seconds", wall_seconds);
  JsonValue violations_json = JsonValue(JsonValue::Array{});
  for (const auto& v : violations) {
    JsonValue entry;
    entry.set("kind", violation_kind_name(v.kind));
    entry.set("detail", v.detail);
    violations_json.push_back(std::move(entry));
  }
  doc.set("violations", std::move(violations_json));
  doc.set("certificate", certificate_to_json(certificate));
  return doc;
}

AnalysisReport analyze_module_design(
    const ModuleSystem& sys, const std::vector<LinearSchedule>& schedules,
    const std::vector<IntMat>& spaces, const Interconnect& net,
    const AnalyzeOptions& options) {
  NUSYS_REQUIRE(schedules.size() == sys.module_count() &&
                    spaces.size() == sys.module_count(),
                "analyze_module_design: one schedule and one space per "
                "module");
  const WallTimer timer;
  AnalysisReport report;
  report.certificate.design = sys.name();
  Builder b{&report};

  std::vector<DomainFacets> facets;
  facets.reserve(sys.module_count());
  for (std::size_t m = 0; m < sys.module_count(); ++m) {
    facets.push_back(domain_facets(sys.module(m).domain));
  }

  for (std::size_t m = 0; m < sys.module_count(); ++m) {
    const std::string prefix = "module/" + std::to_string(m);
    for (const auto& dep : sys.module(m).local_deps) {
      auto& causality =
          b.add(prefix + "/causality/" + dep.variable, "local-causality");
      const i64 slack = schedules[m].slack(dep.vector);
      if (slack <= 0) {
        std::ostringstream os;
        os << sys.module(m).name << " variable " << dep.variable
           << " has nonpositive slack " << slack;
        b.violate(causality, Violation::Kind::kCausality, os.str());
        continue;  // Mirror the verifier: no route check without slack.
      }
      b.certify(causality, sys.module(m).name + " variable " + dep.variable +
                               ": constant slack " + std::to_string(slack));

      auto& route_rec =
          b.add(prefix + "/route/" + dep.variable, "local-route");
      const IntVec disp = spaces[m] * dep.vector;
      const auto route = route_displacement(net, disp, slack);
      if (route) {
        route_rec.route = route->hops_per_link;
        route_rec.displacement = disp;
        b.certify(route_rec,
                  sys.module(m).name + " variable " + dep.variable +
                      ": displacement " + disp.to_string() + " routed in " +
                      std::to_string(route->total_hops) + " hop(s)");
      } else {
        std::ostringstream os;
        os << sys.module(m).name << " variable " << dep.variable
           << " cannot travel " << disp << " in " << slack << " tick(s)";
        b.violate(route_rec, Violation::Kind::kUnroutable, os.str());
      }
    }
    auto& injectivity = b.add(prefix + "/injectivity", "injectivity");
    analyze_injectivity(b, injectivity, sys.module(m).name,
                        sys.module(m).domain, schedules[m], spaces[m],
                        facets[m]);
  }

  for (std::size_t ma = 0; ma < sys.module_count(); ++ma) {
    for (std::size_t mb = ma + 1; mb < sys.module_count(); ++mb) {
      auto& pair = b.add("pair/" + std::to_string(ma) + "/" +
                             std::to_string(mb) + "/exclusivity",
                         "exclusivity-pair");
      analyze_pair_exclusivity(b, pair, sys, ma, mb, schedules, spaces,
                               facets[ma], facets[mb]);
    }
  }

  for (std::size_t gi = 0; gi < sys.globals().size(); ++gi) {
    const GlobalDep& g = sys.globals()[gi];
    const DomainFacets guard = domain_facets(g.guard);
    const std::string prefix = "global/" + std::to_string(gi);
    auto& causality = b.add(prefix + "/causality", "global-causality");
    const auto margin_min =
        analyze_global_causality(b, causality, g, schedules, guard);
    // Index-based access: analyze_global_route appends to the record list,
    // which may reallocate.
    const std::size_t causality_index =
        report.certificate.obligations.size() - 1;
    auto& route = b.add(prefix + "/route", "global-route");
    analyze_global_route(b, route, g, schedules, spaces, net, guard,
                         margin_min,
                         report.certificate.obligations[causality_index],
                         options.witness_budget, /*oracle_rule=*/false);
  }

  auto& counters = analysis_counters();
  counters.designs_analyzed.fetch_add(1, std::memory_order_relaxed);
  counters.obligations_certified.fetch_add(report.certified,
                                           std::memory_order_relaxed);
  counters.obligations_enumerated.fetch_add(report.enumerated,
                                            std::memory_order_relaxed);

  if (options.paranoid) {
    const auto extensional =
        verify_module_design(sys, schedules, spaces, net);
    if (!extensional.ok() && report.ok()) {
      for (const auto& v : extensional.violations) {
        report.violations.push_back(
            {v.kind, "paranoid cross-check: " + v.detail});
      }
    }
  }
  report.wall_seconds = timer.seconds();
  return report;
}

bool static_schedules_satisfy(const ModuleSystem& sys,
                              const std::vector<LinearSchedule>& schedules) {
  auto& counters = analysis_counters();
  if (paranoid_revalidate_env()) {
    counters.oracle_revalidations.fetch_add(1, std::memory_order_relaxed);
    return schedules_satisfy(sys, schedules);
  }
  counters.static_revalidations.fetch_add(1, std::memory_order_relaxed);
  NUSYS_REQUIRE(schedules.size() == sys.module_count(),
                "static_schedules_satisfy: one schedule per module");
  for (std::size_t m = 0; m < sys.module_count(); ++m) {
    NUSYS_REQUIRE(schedules[m].dim() == sys.dim(),
                  "static_schedules_satisfy: schedule dimension mismatch");
    if (!schedules[m].is_feasible(sys.module(m).local_deps.vectors())) {
      return false;
    }
  }
  for (const auto& g : sys.globals()) {
    const i64 required = g.allow_equal_time ? 0 : 1;
    IntVec margin;
    i64 margin_constant = 0;
    global_margin(g, schedules, &margin, &margin_constant);
    const DomainFacets guard = domain_facets(g.guard);
    const auto bound = attempt([&] {
      return prove_lower_bound(guard.inequalities, margin, margin_constant);
    });
    if (bound && ceil_fraction(bound->bound) >= required) {
      counters.obligations_certified.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (!bound) {
      const auto empty =
          attempt([&] { return prove_empty(guard.inequalities); });
      if (empty) {
        counters.obligations_certified.fetch_add(1,
                                                 std::memory_order_relaxed);
        continue;
      }
    }
    counters.obligations_enumerated.fetch_add(1, std::memory_order_relaxed);
    if (find_global_causality_violation(g, schedules)) return false;
  }
  return true;
}

bool static_spaces_satisfy(const ModuleSystem& sys,
                           const std::vector<LinearSchedule>& schedules,
                           const std::vector<IntMat>& spaces,
                           const Interconnect& net) {
  auto& counters = analysis_counters();
  if (paranoid_revalidate_env()) {
    counters.oracle_revalidations.fetch_add(1, std::memory_order_relaxed);
    return spaces_satisfy(sys, schedules, spaces, net);
  }
  counters.static_revalidations.fetch_add(1, std::memory_order_relaxed);
  NUSYS_REQUIRE(schedules.size() == sys.module_count() &&
                    spaces.size() == sys.module_count(),
                "static_spaces_satisfy: one schedule and one space per "
                "module");

  std::vector<DomainFacets> facets;
  facets.reserve(sys.module_count());
  for (std::size_t m = 0; m < sys.module_count(); ++m) {
    facets.push_back(domain_facets(sys.module(m).domain));
  }

  AnalysisReport scratch;
  Builder b{&scratch};
  for (std::size_t m = 0; m < sys.module_count(); ++m) {
    for (const auto& dep : sys.module(m).local_deps) {
      if (!routable(net, spaces[m] * dep.vector,
                    schedules[m].slack(dep.vector))) {
        return false;
      }
    }
    auto& injectivity = b.add("injectivity", "injectivity");
    analyze_injectivity(b, injectivity, sys.module(m).name,
                        sys.module(m).domain, schedules[m], spaces[m],
                        facets[m]);
    if (injectivity.status == ObligationStatus::kViolated) return false;
  }
  for (std::size_t ma = 0; ma < sys.module_count(); ++ma) {
    for (std::size_t mb = ma + 1; mb < sys.module_count(); ++mb) {
      auto& pair = b.add("pair", "exclusivity-pair");
      analyze_pair_exclusivity(b, pair, sys, ma, mb, schedules, spaces,
                               facets[ma], facets[mb]);
      if (pair.status == ObligationStatus::kViolated) return false;
    }
  }
  for (const auto& g : sys.globals()) {
    const DomainFacets guard = domain_facets(g.guard);
    IntVec margin;
    i64 margin_constant = 0;
    global_margin(g, schedules, &margin, &margin_constant);
    const auto bound = attempt([&] {
      return prove_lower_bound(guard.inequalities, margin, margin_constant);
    });
    std::optional<Fraction> margin_min;
    if (bound) margin_min = bound->bound;
    ObligationRecord causality;
    causality.status = ObligationStatus::kEnumerated;
    if (!bound) {
      const auto empty =
          attempt([&] { return prove_empty(guard.inequalities); });
      if (empty) {
        causality.status = ObligationStatus::kCertified;
        causality.empty = *empty;
      }
    } else {
      causality.status = ObligationStatus::kCertified;
      causality.bound = *bound;
    }
    auto& route = b.add("route", "global-route");
    analyze_global_route(b, route, g, schedules, spaces, net, guard,
                         margin_min, causality, /*witness_budget=*/4096,
                         /*oracle_rule=*/true);
    if (route.status == ObligationStatus::kViolated) return false;
  }
  counters.obligations_certified.fetch_add(scratch.certified,
                                           std::memory_order_relaxed);
  counters.obligations_enumerated.fetch_add(scratch.enumerated,
                                            std::memory_order_relaxed);
  return true;
}

AnalysisCounters& analysis_counters() {
  static AnalysisCounters counters;
  return counters;
}

JsonValue analysis_counters_json() {
  const auto& c = analysis_counters();
  JsonValue doc;
  doc.set("designs_analyzed",
          static_cast<i64>(c.designs_analyzed.load(std::memory_order_relaxed)));
  doc.set("obligations_certified",
          static_cast<i64>(
              c.obligations_certified.load(std::memory_order_relaxed)));
  doc.set("obligations_enumerated",
          static_cast<i64>(
              c.obligations_enumerated.load(std::memory_order_relaxed)));
  doc.set("static_revalidations",
          static_cast<i64>(
              c.static_revalidations.load(std::memory_order_relaxed)));
  doc.set("oracle_revalidations",
          static_cast<i64>(
              c.oracle_revalidations.load(std::memory_order_relaxed)));
  return doc;
}

namespace {

// ---------------------------------------------------------------------------
// Uniform (single-recurrence) machinery.

/// Inequalities of the dependence-instance polytope {p : p ∈ D, p - d ∈ D}
/// — the consumer points whose producer is inside the domain.
std::vector<AffineInequality> instance_inequalities(const DomainFacets& facets,
                                                    const IntVec& d) {
  std::vector<AffineInequality> out = facets.inequalities;
  const auto shifted = shifted_inequalities(facets.inequalities, d);
  out.insert(out.end(), shifted.begin(), shifted.end());
  return out;
}

/// First consumer point whose producer p - d is inside the domain.
std::optional<IntVec> find_dependence_instance(const IndexDomain& domain,
                                               const IntVec& d) {
  std::optional<IntVec> hit;
  domain.for_each([&](const IntVec& p) {
    if (hit) return;
    if (domain.contains(p - d)) hit = p;
  });
  return hit;
}

/// Replays verify_design's ALAP wire audit; first overload found, if any.
std::optional<std::string> find_wire_overload(const CanonicRecurrence& rec,
                                              const LinearSchedule& timing,
                                              const IntMat& space,
                                              const Interconnect& net) {
  std::map<std::tuple<IntVec, std::string, std::string, i64>, IntVec>
      wire_load;
  std::optional<std::string> hit;
  rec.domain().for_each([&](const IntVec& p) {
    if (hit) return;
    for (const auto& dep : rec.dependences()) {
      const IntVec producer = p - dep.vector;
      if (!rec.domain().contains(producer)) continue;
      const i64 slack = timing.at(p) - timing.at(producer);
      if (slack <= 0) continue;
      const IntVec disp = space * p - space * producer;
      const auto route = route_displacement(net, disp, slack);
      if (!route) continue;
      IntVec at = space * producer;
      i64 t = timing.at(p) - route->total_hops;
      for (std::size_t l = 0; l < net.link_count() && !hit; ++l) {
        for (i64 c = 0; c < route->hops_per_link[l] && !hit; ++c) {
          const auto key =
              std::make_tuple(at, net.link(l).name, dep.variable, t);
          const auto [it, inserted] = wire_load.emplace(key, producer);
          if (!inserted && it->second != producer) {
            std::ostringstream os;
            os << "wire (" << at << " -> " << net.link(l).name << ", "
               << dep.variable << ") carries two values at tick " << t;
            hit = os.str();
          }
          at += net.link(l).direction;
          ++t;
        }
      }
      if (hit) return;
    }
  });
  return hit;
}

// ---------------------------------------------------------------------------
// Certificate re-checking: integer substitution and small exact solves
// only; searched proofs (routes) are validated, never re-searched.

/// True when `hops` is a valid route realization: nonnegative, Δ·hops
/// equals the displacement, and Σhops fits the budget.
bool route_realizes(const Interconnect& net, const IntVec& hops,
                    const IntVec& displacement, i64 max_hops) {
  if (hops.dim() != net.link_count() || max_hops < 0) return false;
  try {
    i64 total = 0;
    IntVec reached(displacement.dim());
    for (std::size_t l = 0; l < net.link_count(); ++l) {
      if (hops[l] < 0) return false;
      if (net.link(l).direction.dim() != displacement.dim()) return false;
      total = checked_add(total, hops[l]);
      reached += net.link(l).direction * hops[l];
    }
    return total <= max_hops && reached == displacement;
  } catch (const Error&) {
    return false;
  }
}

bool injectivity_proof_ok(const ObligationRecord& o,
                          const DomainFacets& facets,
                          const LinearSchedule& t, const IntMat& s) {
  // The kernel must be *recomputed equal*, not merely plausible: a
  // tampered (smaller) kernel would prove injectivity on a sublattice.
  const auto kb = equality_kernel_basis(facets);
  if (o.kernel != kb) return false;
  if (kb.empty()) return o.rows.empty();
  const IntMat m = pi_matrix(t, s) * IntMat::from_columns(kb);
  const auto det = subset_determinant(m, o.rows);
  return det && *det != 0 && o.determinant && *o.determinant == *det;
}

bool pair_proof_ok(const ModuleSystem& sys, std::size_t ma, std::size_t mb,
                   const std::vector<LinearSchedule>& schedules,
                   const std::vector<IntMat>& spaces, const DomainFacets& fa,
                   const DomainFacets& fb, const ObligationRecord& o) {
  if (!o.combination.empty()) {
    if (!sys.fold_key()) return false;
    return check_fold_combination(
        fold_relation_rows(fa, fb, schedules[ma], schedules[mb], spaces[ma],
                           spaces[mb]),
        fold_target_rows(*sys.fold_key(), sys.dim()), o.combination);
  }
  if (o.empty) {
    return check_empty(pair_polytope(fa, fb, schedules[ma], schedules[mb],
                                     spaces[ma], spaces[mb]),
                       *o.empty);
  }
  return false;
}

bool global_causality_proof_ok(const GlobalDep& g,
                               const std::vector<LinearSchedule>& schedules,
                               const DomainFacets& guard,
                               const ObligationRecord& o) {
  if (o.empty) return check_empty(guard.inequalities, *o.empty);
  if (!o.bound) return false;
  IntVec margin;
  i64 margin_constant = 0;
  global_margin(g, schedules, &margin, &margin_constant);
  const i64 required = g.allow_equal_time ? 0 : 1;
  return check_lower_bound(guard.inequalities, margin, margin_constant,
                           *o.bound) &&
         ceil_fraction(o.bound->bound) >= required;
}

bool global_route_proof_ok(const GlobalDep& g,
                           const std::vector<LinearSchedule>& schedules,
                           const std::vector<IntMat>& spaces,
                           const Interconnect& net, const DomainFacets& guard,
                           const ObligationRecord& o) {
  if (o.empty && !o.route) return check_empty(guard.inequalities, *o.empty);
  if (!o.bound || !o.route || !o.displacement || !o.witness) return false;
  IntVec margin;
  i64 margin_constant = 0;
  global_margin(g, schedules, &margin, &margin_constant);
  if (!check_lower_bound(guard.inequalities, margin, margin_constant,
                         *o.bound)) {
    return false;
  }
  const i64 h = ceil_fraction(o.bound->bound);
  if (h < 0) return false;
  if (!g.guard.contains(*o.witness)) return false;
  const AffineVecMap disp_map = global_displacement(g, spaces);
  for (std::size_t r = 0; r < disp_map.matrix.rows(); ++r) {
    if (!constant_on_hull(guard, disp_map.matrix.row(r))) return false;
  }
  if (disp_map.apply(*o.witness) != *o.displacement) return false;
  return route_realizes(net, *o.route, *o.displacement, h);
}

/// Walks the certificate's obligation list in the analyzer's deterministic
/// order; any id or kind drift is a mismatch.
struct CertCursor {
  explicit CertCursor(const std::vector<ObligationRecord>& obs)
      : obligations(obs) {}

  const std::vector<ObligationRecord>& obligations;
  std::size_t index = 0;
  std::string error;

  const ObligationRecord* next(const std::string& id,
                               const std::string& kind) {
    if (index >= obligations.size()) {
      error = "certificate is missing obligation " + id;
      return nullptr;
    }
    const ObligationRecord& o = obligations[index++];
    if (o.id != id || o.kind != kind) {
      error = "certificate obligation " + o.id + " (" + o.kind +
              ") does not match the design's " + id + " (" + kind + ")";
      return nullptr;
    }
    return &o;
  }

  [[nodiscard]] bool done() const {
    return index == obligations.size();
  }
};

CertificateCheck fail_obligation(const ObligationRecord& o,
                                 const std::string& why) {
  return {false, "obligation " + o.id + ": " + why};
}

}  // namespace

AnalysisReport analyze_design(const CanonicRecurrence& recurrence,
                              const LinearSchedule& timing,
                              const IntMat& space, const Interconnect& net,
                              const AnalyzeOptions& options) {
  recurrence.validate();  // Structural only; domain-size independent.
  NUSYS_REQUIRE(timing.dim() == recurrence.domain().dim(),
                "analyze_design: timing dimension mismatch");
  NUSYS_REQUIRE(space.cols() == recurrence.domain().dim() &&
                    space.rows() == net.label_dim(),
                "analyze_design: space shape mismatch");
  const WallTimer timer;
  AnalysisReport report;
  report.certificate.design = recurrence.name();
  Builder b{&report};
  const DomainFacets facets = domain_facets(recurrence.domain());

  std::vector<std::optional<Route>> dep_routes;
  for (const auto& dep : recurrence.dependences()) {
    dep_routes.emplace_back();
    const i64 slack = timing.slack(dep.vector);
    auto& causality =
        b.add("dep/" + dep.variable + "/causality", "dep-causality");
    if (slack >= 1) {
      b.certify(causality, dep.variable + ": constant slack " +
                               std::to_string(slack));
    } else {
      const auto empty = attempt([&] {
        return prove_empty(instance_inequalities(facets, dep.vector));
      });
      if (empty) {
        causality.empty = *empty;
        b.certify(causality, dep.variable + ": no in-domain instances");
      } else if (auto p = find_dependence_instance(recurrence.domain(),
                                                   dep.vector)) {
        std::ostringstream os;
        os << "operand " << dep.variable << " of " << *p << " produced at "
           << (*p - dep.vector) << " only " << slack << " tick(s) earlier";
        b.violate(causality, Violation::Kind::kCausality, os.str());
      } else {
        b.enumerated(causality, dep.variable +
                                    ": no in-domain instances (verified by "
                                    "enumeration)");
      }
      continue;  // Mirror the verifier: no route check without slack.
    }

    auto& route_rec = b.add("dep/" + dep.variable + "/route", "dep-route");
    const IntVec disp = space * dep.vector;
    const auto route = route_displacement(net, disp, slack);
    if (route) {
      route_rec.route = route->hops_per_link;
      route_rec.displacement = disp;
      dep_routes.back() = *route;
      b.certify(route_rec, dep.variable + ": displacement " +
                               disp.to_string() + " routed in " +
                               std::to_string(route->total_hops) +
                               " hop(s)");
      continue;
    }
    const auto empty = attempt([&] {
      return prove_empty(instance_inequalities(facets, dep.vector));
    });
    if (empty) {
      route_rec.empty = *empty;
      b.certify(route_rec, dep.variable + ": no in-domain instances");
    } else if (auto p =
                   find_dependence_instance(recurrence.domain(), dep.vector)) {
      std::ostringstream os;
      os << "operand " << dep.variable << " of " << *p
         << " cannot travel displacement " << disp << " in " << slack
         << " tick(s)";
      b.violate(route_rec, Violation::Kind::kUnroutable, os.str());
    } else {
      b.enumerated(route_rec, dep.variable +
                                  ": no in-domain instances (verified by "
                                  "enumeration)");
    }
  }

  auto& injectivity = b.add("injectivity", "injectivity");
  analyze_injectivity(b, injectivity, recurrence.name(), recurrence.domain(),
                      timing, space, facets);
  const bool injective_certified =
      injectivity.status == ObligationStatus::kCertified;

  auto& wires = b.add("wires", "wire-audit");
  bool any_route = false;
  bool single_use = true;
  for (const auto& route : dep_routes) {
    if (!route) continue;
    any_route = true;
    for (const i64 hops : route->hops_per_link) {
      if (hops > 1) single_use = false;
    }
  }
  if (!any_route) {
    b.certify(wires, "no routed dependences; wire audit is vacuous");
  } else if (injective_certified && single_use) {
    // Each link is used at most once per route and variables are unique
    // (CA4), so wire keys collide only when Π does — ruled out above.
    b.certify(wires,
              "each link used at most once per route; covered by the "
              "injectivity certificate");
  } else if (auto hit = find_wire_overload(recurrence, timing, space, net)) {
    b.violate(wires, Violation::Kind::kLinkOverload, *hit);
  } else {
    b.enumerated(wires, "ALAP wire audit verified by enumeration");
  }

  auto& counters = analysis_counters();
  counters.designs_analyzed.fetch_add(1, std::memory_order_relaxed);
  counters.obligations_certified.fetch_add(report.certified,
                                           std::memory_order_relaxed);
  counters.obligations_enumerated.fetch_add(report.enumerated,
                                            std::memory_order_relaxed);

  if (options.paranoid) {
    const auto extensional = verify_design(recurrence, timing, space, net);
    if (!extensional.ok() && report.ok()) {
      for (const auto& v : extensional.violations) {
        report.violations.push_back(
            {v.kind, "paranoid cross-check: " + v.detail});
      }
    }
  }
  report.wall_seconds = timer.seconds();
  return report;
}

CertificateCheck check_module_certificate(
    const ModuleSystem& sys, const std::vector<LinearSchedule>& schedules,
    const std::vector<IntMat>& spaces, const Interconnect& net,
    const DesignCertificate& certificate) {
  try {
    if (schedules.size() != sys.module_count() ||
        spaces.size() != sys.module_count()) {
      return {false, "schedule/space count does not match the module system"};
    }
    std::vector<DomainFacets> facets;
    facets.reserve(sys.module_count());
    for (std::size_t m = 0; m < sys.module_count(); ++m) {
      facets.push_back(domain_facets(sys.module(m).domain));
    }
    CertCursor cursor{certificate.obligations};

    for (std::size_t m = 0; m < sys.module_count(); ++m) {
      const std::string prefix = "module/" + std::to_string(m);
      for (const auto& dep : sys.module(m).local_deps) {
        const auto* o = cursor.next(prefix + "/causality/" + dep.variable,
                                    "local-causality");
        if (!o) return {false, cursor.error};
        const i64 slack = schedules[m].slack(dep.vector);
        if (o->status == ObligationStatus::kCertified) {
          if (slack < 1) return fail_obligation(*o, "slack is nonpositive");
        } else if (o->status == ObligationStatus::kViolated) {
          if (slack >= 1) return fail_obligation(*o, "slack is positive");
        } else {
          return fail_obligation(*o, "unexpected enumerated status");
        }
        if (slack < 1) continue;

        const auto* r =
            cursor.next(prefix + "/route/" + dep.variable, "local-route");
        if (!r) return {false, cursor.error};
        const IntVec disp = spaces[m] * dep.vector;
        if (r->status == ObligationStatus::kCertified) {
          if (!r->route || !route_realizes(net, *r->route, disp, slack)) {
            return fail_obligation(*r, "stored route does not realize the "
                                       "displacement within slack");
          }
        } else if (r->status == ObligationStatus::kViolated) {
          if (route_displacement(net, disp, slack)) {
            return fail_obligation(*r, "displacement is routable");
          }
        } else {
          return fail_obligation(*r, "unexpected enumerated status");
        }
      }

      const auto* inj = cursor.next(prefix + "/injectivity", "injectivity");
      if (!inj) return {false, cursor.error};
      const auto collision = [&] {
        return find_collision(sys.module(m).name, sys.module(m).domain,
                              schedules[m], spaces[m]);
      };
      if (inj->status == ObligationStatus::kCertified) {
        if (!injectivity_proof_ok(*inj, facets[m], schedules[m], spaces[m])) {
          return fail_obligation(*inj, "injectivity proof does not check");
        }
      } else if (inj->status == ObligationStatus::kEnumerated) {
        if (collision()) return fail_obligation(*inj, "collision exists");
      } else {
        if (!collision()) return fail_obligation(*inj, "no collision found");
      }
    }

    for (std::size_t ma = 0; ma < sys.module_count(); ++ma) {
      for (std::size_t mb = ma + 1; mb < sys.module_count(); ++mb) {
        const auto* o = cursor.next("pair/" + std::to_string(ma) + "/" +
                                        std::to_string(mb) + "/exclusivity",
                                    "exclusivity-pair");
        if (!o) return {false, cursor.error};
        if (o->status == ObligationStatus::kCertified) {
          if (!pair_proof_ok(sys, ma, mb, schedules, spaces, facets[ma],
                             facets[mb], *o)) {
            return fail_obligation(*o, "fold/exclusivity proof does not "
                                       "check");
          }
        } else if (o->status == ObligationStatus::kEnumerated) {
          if (find_pair_collision(sys, ma, mb, schedules, spaces)) {
            return fail_obligation(*o, "cross-module collision exists");
          }
        } else {
          if (!find_pair_collision(sys, ma, mb, schedules, spaces)) {
            return fail_obligation(*o, "no cross-module collision found");
          }
        }
      }
    }

    for (std::size_t gi = 0; gi < sys.globals().size(); ++gi) {
      const GlobalDep& g = sys.globals()[gi];
      const DomainFacets guard = domain_facets(g.guard);
      const std::string prefix = "global/" + std::to_string(gi);

      const auto* o = cursor.next(prefix + "/causality", "global-causality");
      if (!o) return {false, cursor.error};
      if (o->status == ObligationStatus::kCertified) {
        if (!global_causality_proof_ok(g, schedules, guard, *o)) {
          return fail_obligation(*o, "causality proof does not check");
        }
      } else if (o->status == ObligationStatus::kEnumerated) {
        if (find_global_causality_violation(g, schedules)) {
          return fail_obligation(*o, "causality violation exists");
        }
      } else {
        if (!find_global_causality_violation(g, schedules)) {
          return fail_obligation(*o, "no causality violation found");
        }
      }

      const auto* r = cursor.next(prefix + "/route", "global-route");
      if (!r) return {false, cursor.error};
      if (r->status == ObligationStatus::kCertified) {
        if (!global_route_proof_ok(g, schedules, spaces, net, guard, *r)) {
          return fail_obligation(*r, "route proof does not check");
        }
      } else if (r->status == ObligationStatus::kEnumerated) {
        if (find_global_route_violation(g, schedules, spaces, net)) {
          return fail_obligation(*r, "route violation exists");
        }
      } else {
        if (!find_global_route_violation(g, schedules, spaces, net)) {
          return fail_obligation(*r, "no route violation found");
        }
      }
    }

    if (!cursor.done()) {
      return {false, "certificate has extra obligations"};
    }
    return {true, ""};
  } catch (const Error& e) {
    return {false, std::string("checker error: ") + e.what()};
  }
}

CertificateCheck check_design_certificate(
    const CanonicRecurrence& recurrence, const LinearSchedule& timing,
    const IntMat& space, const Interconnect& net,
    const DesignCertificate& certificate) {
  try {
    recurrence.validate();
    const DomainFacets facets = domain_facets(recurrence.domain());
    CertCursor cursor{certificate.obligations};

    bool any_route = false;
    bool single_use = true;
    for (const auto& dep : recurrence.dependences()) {
      const i64 slack = timing.slack(dep.vector);
      const auto* o =
          cursor.next("dep/" + dep.variable + "/causality", "dep-causality");
      if (!o) return {false, cursor.error};
      const auto instance = [&] {
        return find_dependence_instance(recurrence.domain(), dep.vector);
      };
      if (o->status == ObligationStatus::kCertified) {
        if (o->empty) {
          if (!check_empty(instance_inequalities(facets, dep.vector),
                           *o->empty)) {
            return fail_obligation(*o, "emptiness proof does not check");
          }
        } else if (slack < 1) {
          return fail_obligation(*o, "slack is nonpositive");
        }
      } else if (o->status == ObligationStatus::kEnumerated) {
        if (slack < 1 && instance()) {
          return fail_obligation(*o, "causality violation exists");
        }
      } else {
        if (slack >= 1 || !instance()) {
          return fail_obligation(*o, "no causality violation found");
        }
      }
      if (slack < 1) continue;

      const auto* r =
          cursor.next("dep/" + dep.variable + "/route", "dep-route");
      if (!r) return {false, cursor.error};
      const IntVec disp = space * dep.vector;
      // The wire audit reasons about the canonical (search-produced)
      // route, not the stored one.
      const auto canonical = route_displacement(net, disp, slack);
      if (canonical) {
        any_route = true;
        for (const i64 hops : canonical->hops_per_link) {
          if (hops > 1) single_use = false;
        }
      }
      if (r->status == ObligationStatus::kCertified) {
        if (r->empty) {
          if (!check_empty(instance_inequalities(facets, dep.vector),
                           *r->empty)) {
            return fail_obligation(*r, "emptiness proof does not check");
          }
        } else if (!r->route ||
                   !route_realizes(net, *r->route, disp, slack)) {
          return fail_obligation(*r, "stored route does not realize the "
                                     "displacement within slack");
        }
      } else if (r->status == ObligationStatus::kEnumerated) {
        if (!canonical && instance()) {
          return fail_obligation(*r, "route violation exists");
        }
      } else {
        if (canonical || !instance()) {
          return fail_obligation(*r, "no route violation found");
        }
      }
    }

    const auto* inj = cursor.next("injectivity", "injectivity");
    if (!inj) return {false, cursor.error};
    const auto collision = [&] {
      return find_collision(recurrence.name(), recurrence.domain(), timing,
                            space);
    };
    if (inj->status == ObligationStatus::kCertified) {
      if (!injectivity_proof_ok(*inj, facets, timing, space)) {
        return fail_obligation(*inj, "injectivity proof does not check");
      }
    } else if (inj->status == ObligationStatus::kEnumerated) {
      if (collision()) return fail_obligation(*inj, "collision exists");
    } else {
      if (!collision()) return fail_obligation(*inj, "no collision found");
    }

    const auto* wires = cursor.next("wires", "wire-audit");
    if (!wires) return {false, cursor.error};
    if (wires->status == ObligationStatus::kCertified) {
      const bool trivial =
          !any_route ||
          (single_use && inj->status == ObligationStatus::kCertified);
      if (!trivial) {
        return fail_obligation(*wires,
                               "wire audit is not trivially covered by the "
                               "injectivity certificate");
      }
    } else if (wires->status == ObligationStatus::kEnumerated) {
      if (find_wire_overload(recurrence, timing, space, net)) {
        return fail_obligation(*wires, "wire overload exists");
      }
    } else {
      if (!find_wire_overload(recurrence, timing, space, net)) {
        return fail_obligation(*wires, "no wire overload found");
      }
    }

    if (!cursor.done()) {
      return {false, "certificate has extra obligations"};
    }
    return {true, ""};
  } catch (const Error& e) {
    return {false, std::string("checker error: ") + e.what()};
  }
}

}  // namespace nusys
