// JSON parsing and serialization for the batch driver and the synthesis
// service protocol.
//
// Two layers live here:
//   * JsonValue — a full recursive JSON document (null / bool / integer /
//     double / string / array / object) with a strict parser and a
//     round-tripping serializer. The service protocol (src/service/) frames
//     one JsonValue per line over its transports. The parser rejects
//     malformed input with a structured JsonError carrying the byte offset
//     — it never returns a partial value — and bounds nesting depth so a
//     hostile request cannot overflow the stack.
//   * parse_flat_json_object — the historical batch-JSONL dialect (string
//     keys, scalar values only), now a thin shim over the full parser that
//     still rejects nesting, floats and duplicate keys loudly.
//
// Parsing by hand keeps the dependency footprint at "standard library
// only" (see CONTRIBUTING.md).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "support/checked.hpp"
#include "support/errors.hpp"

namespace nusys {

/// Malformed JSON text or a type-mismatched access. The byte offset of the
/// failure (for parse errors) makes protocol rejections actionable.
class JsonError : public DomainError {
 public:
  JsonError(const std::string& what, std::size_t offset)
      : DomainError(what), offset_(offset) {}

  /// Byte offset in the parsed text where the error was detected; 0 for
  /// access (non-parse) errors.
  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_ = 0;
};

/// One JSON document node. Objects preserve insertion order (protocol
/// responses render deterministically) and reject duplicate keys at parse
/// time; integers that fit int64 stay exact, everything else numeric is a
/// double.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;  ///< null
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}            // NOLINT
  JsonValue(i64 v) : kind_(Kind::kInt), int_(v) {}               // NOLINT
  JsonValue(int v) : JsonValue(static_cast<i64>(v)) {}           // NOLINT
  JsonValue(std::size_t v);                                      // NOLINT
  JsonValue(double v) : kind_(Kind::kDouble), double_(v) {}      // NOLINT
  JsonValue(std::string s)                                       // NOLINT
      : kind_(Kind::kString), string_(std::move(s)) {}
  JsonValue(const char* s) : JsonValue(std::string(s)) {}        // NOLINT
  JsonValue(Array a) : kind_(Kind::kArray), array_(std::move(a)) {}  // NOLINT
  JsonValue(Object o);                                           // NOLINT

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_int() const noexcept { return kind_ == Kind::kInt; }
  [[nodiscard]] bool is_double() const noexcept {
    return kind_ == Kind::kDouble;
  }
  [[nodiscard]] bool is_number() const noexcept {
    return is_int() || is_double();
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }
  [[nodiscard]] bool is_array() const noexcept {
    return kind_ == Kind::kArray;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }

  /// Checked accessors; throw JsonError naming the expected and actual
  /// kind on mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] i64 as_int() const;          ///< kInt only.
  [[nodiscard]] double as_double() const;    ///< kInt or kDouble.
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member by key, or nullptr when absent (throws when not an
  /// object).
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  /// Object member by key; throws JsonError when absent.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;

  /// Appends a member to an object (or turns a null into an object).
  /// Throws JsonError on a duplicate key or a non-object.
  void set(std::string key, JsonValue value);

  /// Appends an element to an array (or turns a null into an array).
  void push_back(JsonValue value);

  /// Compact single-line serialization; parse(dump()) round-trips every
  /// value (doubles print with max_digits10).
  [[nodiscard]] std::string dump() const;

  /// Strict parse of exactly one JSON value (leading/trailing whitespace
  /// allowed, trailing garbage rejected). `max_depth` bounds array/object
  /// nesting. Throws JsonError (never returns a partial value).
  [[nodiscard]] static JsonValue parse(const std::string& text,
                                       std::size_t max_depth = 64);

  friend bool operator==(const JsonValue& a, const JsonValue& b);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  i64 int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Human-readable name of a JSON kind ("null", "bool", ...).
[[nodiscard]] const char* json_kind_name(JsonValue::Kind kind);

/// Escapes `s` as a JSON string literal including the surrounding quotes.
[[nodiscard]] std::string json_quote(const std::string& s);

/// Parses one flat JSON object like {"kind": "conv", "n": 16, "fwd": true}
/// into a key -> value map; booleans become "true"/"false", numbers keep
/// their literal spelling. Throws JsonError (a DomainError) on malformed
/// input, nesting, floats or duplicate keys — the batch-JSONL dialect.
[[nodiscard]] std::map<std::string, std::string> parse_flat_json_object(
    const std::string& text);

}  // namespace nusys
