// Minimal flat-JSON-object parsing for the batch synthesis driver.
//
// A batch stream is JSON Lines: one object per line, string keys, scalar
// values (string / integer / boolean). That tiny dialect is all the batch
// format needs, and parsing it by hand keeps the dependency footprint at
// "standard library only" (see CONTRIBUTING.md). Nested objects, arrays,
// floats and duplicate keys are rejected loudly rather than guessed at.
#pragma once

#include <map>
#include <string>

namespace nusys {

/// Parses one flat JSON object like {"kind": "conv", "n": 16, "fwd": true}
/// into a key -> value map; booleans become "true"/"false", numbers keep
/// their literal spelling. Throws DomainError on malformed input, nesting,
/// floats or duplicate keys.
[[nodiscard]] std::map<std::string, std::string> parse_flat_json_object(
    const std::string& text);

}  // namespace nusys
