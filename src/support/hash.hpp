// FNV-1a hashing for cache keys and on-disk integrity checks.
//
// The canonical design cache (support/cache.hpp) keys entries by printable
// digests of exact integer data — Hermite forms, domain point sets, option
// fields — and guards persisted entries with a checksum. FNV-1a is enough
// for both: the digest only has to be deterministic and well-distributed,
// and a corrupted record only has to be *detected*, not resisted
// adversarially (the entry is then re-synthesized from scratch).
#pragma once

#include <cstdint>
#include <string_view>

#include "support/checked.hpp"

namespace nusys {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// Streaming FNV-1a accumulator: fold bytes, i64s or strings in any order;
/// equal input streams give equal digests on every platform (the i64
/// overload feeds fixed little-endian bytes).
class Fnv1a {
 public:
  constexpr Fnv1a& update(std::uint8_t byte) noexcept {
    state_ = (state_ ^ byte) * kFnvPrime;
    return *this;
  }

  constexpr Fnv1a& update(std::string_view bytes) noexcept {
    for (const char c : bytes) update(static_cast<std::uint8_t>(c));
    return *this;
  }

  constexpr Fnv1a& update(i64 value) noexcept {
    auto u = static_cast<std::uint64_t>(value);
    for (int i = 0; i < 8; ++i) {
      update(static_cast<std::uint8_t>(u & 0xff));
      u >>= 8;
    }
    return *this;
  }

  [[nodiscard]] constexpr std::uint64_t digest() const noexcept {
    return state_;
  }

 private:
  std::uint64_t state_ = kFnvOffsetBasis;
};

/// One-shot FNV-1a of a byte string.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  return Fnv1a{}.update(bytes).digest();
}

}  // namespace nusys
