#include "support/cache.hpp"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "support/hash.hpp"

namespace nusys {

namespace {

constexpr char kMagic[] = "nusys-design-cache v1";
constexpr char kFieldSeparator = '\x1f';

std::string escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::optional<std::string> unescape(const std::string& escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '\\') {
      out += escaped[i];
      continue;
    }
    if (i + 1 == escaped.size()) return std::nullopt;
    switch (escaped[++i]) {
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      default: return std::nullopt;
    }
  }
  return out;
}

std::uint64_t record_checksum(const std::string& key,
                              const std::string& payload) {
  return Fnv1a{}
      .update(key)
      .update(std::string_view(&kFieldSeparator, 1))
      .update(payload)
      .digest();
}

std::string hex64(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

std::optional<std::uint64_t> parse_hex64(const std::string& text) {
  if (text.size() != 16) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : text) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
  }
  return v;
}

std::atomic<CacheReplacementListener> g_replacement_listener{nullptr};

void notify_replaced(const std::vector<std::string>& keys) {
  const CacheReplacementListener listener =
      g_replacement_listener.load(std::memory_order_acquire);
  if (listener == nullptr) return;
  for (const auto& key : keys) listener(key);
}

}  // namespace

void set_cache_replacement_listener(
    CacheReplacementListener listener) noexcept {
  g_replacement_listener.store(listener, std::memory_order_release);
}

DesignCache::DesignCache(CacheConfig config) : config_(std::move(config)) {
  if (!config_.path.empty()) {
    const std::lock_guard<std::mutex> lock(mutex_);
    load_locked();
  }
}

DesignCache::~DesignCache() { flush(); }

std::optional<std::string> DesignCache::lookup(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  entries_.splice(entries_.begin(), entries_, it->second);
  return it->second->second;
}

bool DesignCache::contains(const std::string& key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return index_.count(key) > 0;
}

void DesignCache::insert(const std::string& key, std::string payload) {
  std::vector<std::string> replaced;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    insert_locked(key, std::move(payload), /*count_insertion=*/true,
                  &replaced);
  }
  notify_replaced(replaced);
}

void DesignCache::reject(const std::string& key) {
  bool dropped = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.validation_failures;
    const auto it = index_.find(key);
    if (it != index_.end()) {
      entries_.erase(it->second);
      index_.erase(it);
      dropped = true;
    }
  }
  if (dropped) notify_replaced({key});
}

void DesignCache::insert_locked(const std::string& key, std::string payload,
                                bool count_insertion,
                                std::vector<std::string>* replaced) {
  if (const auto it = index_.find(key); it != index_.end()) {
    it->second->second = std::move(payload);
    entries_.splice(entries_.begin(), entries_, it->second);
    if (replaced != nullptr) replaced->push_back(key);
  } else {
    entries_.emplace_front(key, std::move(payload));
    index_.emplace(key, entries_.begin());
    while (config_.capacity > 0 && entries_.size() > config_.capacity) {
      if (replaced != nullptr) replaced->push_back(entries_.back().first);
      index_.erase(entries_.back().first);
      entries_.pop_back();
      ++stats_.evictions;
    }
  }
  if (count_insertion) ++stats_.insertions;
}

bool DesignCache::flush() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (config_.path.empty()) return true;
  const std::string tmp = config_.path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << kMagic << '\n';
    // Least-recent first, so replaying inserts at load restores recency.
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
      out << hex64(record_checksum(it->first, it->second)) << ' '
          << escape(it->first) << '\t' << escape(it->second) << '\n';
    }
    if (!out) return false;
  }
  if (std::rename(tmp.c_str(), config_.path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

void DesignCache::load_locked() {
  std::ifstream in(config_.path);
  if (!in) return;  // No snapshot yet: an empty cache, not an error.
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    ++stats_.corrupt_entries;
    return;
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto space = line.find(' ');
    const auto tab = line.find('\t');
    if (space == std::string::npos || tab == std::string::npos ||
        tab < space) {
      ++stats_.corrupt_entries;
      continue;
    }
    const auto checksum = parse_hex64(line.substr(0, space));
    const auto key = unescape(line.substr(space + 1, tab - space - 1));
    const auto payload = unescape(line.substr(tab + 1));
    if (!checksum || !key || !payload ||
        *checksum != record_checksum(*key, *payload)) {
      ++stats_.corrupt_entries;
      continue;
    }
    // No replacement notifications during load: the cache is still being
    // constructed, so no derived artifact can reference these entries yet.
    insert_locked(*key, *payload, /*count_insertion=*/false, nullptr);
    ++stats_.loaded_entries;
  }
}

std::size_t DesignCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

CacheStats DesignCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void DesignCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  index_.clear();
}

}  // namespace nusys
