// Overflow-checked 64-bit integer arithmetic.
//
// All index, schedule and matrix computations in nusys run over int64_t.
// The search spaces are tiny but makespans are evaluated over index domains
// that users control, so every arithmetic path that mixes user-supplied
// magnitudes goes through these helpers.
#pragma once

#include <cstdint>
#include <limits>

#include "support/errors.hpp"

namespace nusys {

using i64 = std::int64_t;

/// `a + b`, throwing ContractError on signed overflow.
[[nodiscard]] inline i64 checked_add(i64 a, i64 b) {
  i64 out = 0;
  if (__builtin_add_overflow(a, b, &out)) {
    throw ContractError("checked_add: int64 overflow");
  }
  return out;
}

/// `a - b`, throwing ContractError on signed overflow.
[[nodiscard]] inline i64 checked_sub(i64 a, i64 b) {
  i64 out = 0;
  if (__builtin_sub_overflow(a, b, &out)) {
    throw ContractError("checked_sub: int64 overflow");
  }
  return out;
}

/// `a * b`, throwing ContractError on signed overflow.
[[nodiscard]] inline i64 checked_mul(i64 a, i64 b) {
  i64 out = 0;
  if (__builtin_mul_overflow(a, b, &out)) {
    throw ContractError("checked_mul: int64 overflow");
  }
  return out;
}

/// Euclidean gcd on magnitudes; gcd(0, 0) == 0.
[[nodiscard]] constexpr i64 gcd64(i64 a, i64 b) noexcept {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    const i64 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// Floor division (rounds toward negative infinity). `b` must be nonzero.
[[nodiscard]] inline i64 floor_div(i64 a, i64 b) {
  NUSYS_REQUIRE(b != 0, "floor_div: division by zero");
  i64 q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

/// Ceiling division (rounds toward positive infinity). `b` must be nonzero.
[[nodiscard]] inline i64 ceil_div(i64 a, i64 b) {
  NUSYS_REQUIRE(b != 0, "ceil_div: division by zero");
  i64 q = a / b;
  if ((a % b != 0) && ((a < 0) == (b < 0))) ++q;
  return q;
}

}  // namespace nusys
