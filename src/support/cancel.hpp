// Cooperative cancellation of in-flight synthesis searches.
//
// The synthesis service runs every request under a deadline; when it
// expires (or a drain wants workers back) the search must stop soon, not
// at the next process boundary. The searches therefore poll a shared
// CancelToken at loop boundaries: an unset token (nullptr) is the exact
// legacy code path — zero loads, zero branches on pointer-null only — and
// a set-but-never-fired token changes no result, only adds periodic flag
// reads (the cancellation tests pin both properties). A fired token makes
// the search throw CancelledError out through run_chunked's exception
// routing, which leaves the pool threads reusable.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>

#include "support/errors.hpp"

namespace nusys {

/// Shared cancel/deadline flag polled by the search inner loops. A token
/// fires when request_cancel() was called OR its deadline passed; it can
/// be re-armed with reset() (the service reuses one token per worker
/// slot).
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Fires the token immediately.
  void request_cancel() noexcept {
    cancelled_.store(true, std::memory_order_relaxed);
  }

  /// Arms a deadline `budget` from now; non-positive budgets fire
  /// immediately.
  void set_deadline_after(std::chrono::nanoseconds budget) noexcept {
    deadline_ns_.store(now_ns() + budget.count(), std::memory_order_relaxed);
  }

  /// Clears both the flag and the deadline.
  void reset() noexcept {
    cancelled_.store(false, std::memory_order_relaxed);
    deadline_ns_.store(0, std::memory_order_relaxed);
  }

  /// True when cancelled or past the deadline. Reads the clock only when a
  /// deadline is armed.
  [[nodiscard]] bool fired() const noexcept {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    const long long deadline = deadline_ns_.load(std::memory_order_relaxed);
    return deadline != 0 && now_ns() >= deadline;
  }

 private:
  static long long now_ns() noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  std::atomic<bool> cancelled_{false};
  std::atomic<long long> deadline_ns_{0};  ///< 0 = no deadline armed.
};

/// A search gave up because its CancelToken fired (request timeout or
/// service drain) — distinct from SearchFailure, which means the search
/// completed and found nothing.
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what) : Error(what) {}
};

/// Search loops poll the token once every this many iterations — frequent
/// enough to bound cancellation latency, rare enough to keep the flag read
/// off the profile.
inline constexpr std::size_t kCancelPollStride = 64;

/// Throws CancelledError when `token` is set and has fired; `where` names
/// the search stage in the message.
inline void throw_if_cancelled(const CancelToken* token, const char* where) {
  if (token != nullptr && token->fired()) {
    throw CancelledError(std::string(where) +
                         ": search cancelled (deadline expired or request "
                         "aborted)");
  }
}

}  // namespace nusys
