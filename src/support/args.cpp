#include "support/args.hpp"

#include <cstdlib>

#include "support/errors.hpp"

namespace nusys {

ArgMap::ArgMap(int argc, const char* const* argv,
               const std::set<std::string>& known_flags,
               const std::set<std::string>& known_bool_flags) {
  for (int a = 1; a < argc; ++a) {
    const std::string word = argv[a];
    if (word.rfind("--", 0) != 0) {
      positional_.push_back(word);
      continue;
    }
    std::string name = word.substr(2);
    std::string value;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      NUSYS_REQUIRE(known_flags.contains(name), "unknown flag --" + name);
    } else if (known_bool_flags.contains(name)) {
      value = "true";
    } else {
      NUSYS_REQUIRE(known_flags.contains(name), "unknown flag --" + name);
      NUSYS_REQUIRE(a + 1 < argc, "flag --" + name + " is missing its value");
      value = argv[++a];
    }
    flags_[name] = std::move(value);
  }
}

bool ArgMap::has(const std::string& name) const {
  return flags_.contains(name);
}

std::string ArgMap::get(const std::string& name,
                        const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

i64 ArgMap::get_int(const std::string& name, i64 fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const i64 value = std::strtoll(it->second.c_str(), &end, 10);
  NUSYS_REQUIRE(end != nullptr && *end == '\0' && !it->second.empty(),
                "flag --" + name + " expects an integer, got '" +
                    it->second + "'");
  return value;
}

}  // namespace nusys
