#include "support/fraction.hpp"

#include <ostream>

namespace nusys {

Fraction::Fraction(i64 n, i64 d) : num_(n), den_(d) {
  NUSYS_REQUIRE(d != 0, "Fraction: zero denominator");
  normalize();
}

void Fraction::normalize() {
  if (den_ < 0) {
    num_ = checked_sub(0, num_);
    den_ = checked_sub(0, den_);
  }
  const i64 g = gcd64(num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
  if (num_ == 0) den_ = 1;
}

i64 Fraction::as_integer() const {
  NUSYS_REQUIRE(den_ == 1, "Fraction::as_integer: value is not integral");
  return num_;
}

Fraction Fraction::operator-() const {
  Fraction out;
  out.num_ = checked_sub(0, num_);
  out.den_ = den_;
  return out;
}

Fraction& Fraction::operator+=(const Fraction& rhs) {
  // a/b + c/d = (a*(l/b) + c*(l/d)) / l with l = lcm(b, d); keeping the
  // intermediate terms near the lcm bounds the overflow risk.
  const i64 g = gcd64(den_, rhs.den_);
  const i64 l = checked_mul(den_ / g, rhs.den_);
  num_ = checked_add(checked_mul(num_, l / den_),
                     checked_mul(rhs.num_, l / rhs.den_));
  den_ = l;
  normalize();
  return *this;
}

Fraction& Fraction::operator-=(const Fraction& rhs) { return *this += -rhs; }

Fraction& Fraction::operator*=(const Fraction& rhs) {
  // Cross-reduce before multiplying to keep magnitudes small.
  const i64 g1 = gcd64(num_, rhs.den_);
  const i64 g2 = gcd64(rhs.num_, den_);
  num_ = checked_mul(num_ / g1, rhs.num_ / g2);
  den_ = checked_mul(den_ / g2, rhs.den_ / g1);
  normalize();
  return *this;
}

Fraction& Fraction::operator/=(const Fraction& rhs) {
  NUSYS_REQUIRE(rhs.num_ != 0, "Fraction: division by zero");
  return *this *= Fraction(rhs.den_, rhs.num_);
}

std::strong_ordering operator<=>(const Fraction& a, const Fraction& b) {
  // a.num/a.den <=> b.num/b.den  with positive denominators.
  const i64 lhs = checked_mul(a.num_, b.den_);
  const i64 rhs = checked_mul(b.num_, a.den_);
  return lhs <=> rhs;
}

Fraction Fraction::abs() const { return num_ < 0 ? -*this : *this; }

std::string Fraction::to_string() const {
  std::string out = std::to_string(num_);
  if (den_ != 1) {
    out += '/';
    out += std::to_string(den_);
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Fraction& f) {
  return os << f.to_string();
}

}  // namespace nusys
