// Minimal ASCII table formatter.
//
// The benchmark harness regenerates the paper's Tables 1-2 and the
// per-figure metric series as aligned text tables; this keeps that output
// consistent across binaries.
#pragma once

#include <string>
#include <vector>

namespace nusys {

/// Column-aligned text table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders with single-space padding and `|` separators, e.g.
  ///   | design | output (y) | input (x) |
  ///   |--------|------------|-----------|
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nusys
