// Strict parsing of NUSYS_* environment configuration.
//
// Every runtime toggle used to hand-roll its own getenv parse, and all
// of them silently fell back to the default on a malformed value — a
// typo like NUSYS_PLAN_CACHE_BYTES=256M or NUSYS_DISABLE_SIMD=yes
// configured nothing and said nothing. These helpers centralize the
// grammar and *reject* malformed values with a DomainError naming the
// variable, the offending text and the accepted forms, so a
// misconfigured deployment fails loudly at first use instead of running
// with defaults it did not ask for. (NUSYS_ENGINE has its own
// enumerated parser in systolic/engine.hpp; it was already strict.)
//
// Grammar:
//   * flags: unset and "" mean "not set" (the caller's default); "0"
//     and "1" mean off/on. Nothing else parses.
//   * byte sizes: unset and "" mean the default; otherwise a plain
//     non-negative decimal integer that fits std::size_t. No suffixes.
#pragma once

#include <cstddef>
#include <optional>

namespace nusys {

/// True iff `name` is set to "1", false when unset, "" or "0"; throws
/// DomainError on anything else.
[[nodiscard]] bool env_flag(const char* name);

/// The decimal byte count in `name`, or `fallback` when unset or "";
/// throws DomainError on malformed or out-of-range text.
[[nodiscard]] std::size_t env_bytes(const char* name, std::size_t fallback);

/// Parsing cores for unit tests (no environment access): nullopt means
/// "use the default"; both throw DomainError exactly like the getenv
/// wrappers above, with `name` in the message.
[[nodiscard]] std::optional<bool> parse_env_flag(const char* name,
                                                 const char* text);
[[nodiscard]] std::optional<std::size_t> parse_env_bytes(const char* name,
                                                         const char* text);

}  // namespace nusys
