// Search telemetry: what each exhaustive synthesis stage did and how fast.
//
// Every search already counts what it examines; this module gives those
// counts one shape so the pipeline, the report renderer, the CLI and the
// benches can all speak "candidates per second". Counts split into two
// classes (see docs/METHODOLOGY.md, "Parallel search & determinism"):
//   * invariant  — `examined` and `feasible` depend only on the inputs,
//     never on the worker count; the differential tests pin them;
//   * advisory   — `pruned` depends on the incumbent trajectory, which
//     depends on how the candidate range was chunked across workers.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace nusys {

/// What one search stage examined, kept, and cost.
struct StageTelemetry {
  std::string stage;           ///< e.g. "coarse-schedule", "module-space".
  std::size_t examined = 0;    ///< Candidates enumerated (worker-invariant).
  std::size_t feasible = 0;    ///< Candidates passing feasibility (invariant).
  std::size_t pruned = 0;      ///< Cut by the incumbent bound (advisory).
  std::size_t workers = 1;     ///< Workers the stage actually used.
  double wall_seconds = 0.0;   ///< Stage wall time.
  /// Wall time from pipeline start to the end of this stage; monotone
  /// nondecreasing across a pipeline's stage list.
  double cumulative_seconds = 0.0;
  /// Canonical-design-cache activity attributed to this stage (stages that
  /// never touch the cache leave all three at zero): lookups answered from
  /// the cache, lookups that fell through to a full search, and entries
  /// evicted by this stage's insertions.
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t cache_evictions = 0;

  /// examined / wall_seconds; 0 when the stage was too fast to time.
  [[nodiscard]] double candidates_per_second() const noexcept;

  /// True when any cache counter is nonzero.
  [[nodiscard]] bool touched_cache() const noexcept;
};

/// Per-stage telemetry of one pipeline or facade run, in stage order.
struct SearchTelemetry {
  std::vector<StageTelemetry> stages;

  /// The stage with this name, or nullptr.
  [[nodiscard]] const StageTelemetry* find(const std::string& stage) const;

  [[nodiscard]] std::size_t total_examined() const noexcept;
  [[nodiscard]] double total_seconds() const noexcept;
  [[nodiscard]] std::size_t total_cache_hits() const noexcept;
  [[nodiscard]] std::size_t total_cache_misses() const noexcept;
};

/// Steady-clock stopwatch started at construction.
class WallTimer {
 public:
  WallTimer();

  /// Seconds elapsed since construction.
  [[nodiscard]] double seconds() const;

 private:
  long long start_ns_ = 0;
};

}  // namespace nusys
