#include "support/table.hpp"

#include <algorithm>
#include <sstream>

#include "support/errors.hpp"

namespace nusys {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  NUSYS_REQUIRE(!header_.empty(), "TextTable: header must be non-empty");
}

void TextTable::add_row(std::vector<std::string> row) {
  NUSYS_REQUIRE(row.size() == header_.size(),
                "TextTable: row arity differs from header");
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };

  emit_row(header_);
  os << '|';
  for (const auto w : widths) os << std::string(w + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace nusys
