#include "support/parallel.hpp"

#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "support/errors.hpp"

namespace nusys {

std::size_t SearchParallelism::resolve() const noexcept {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t SearchParallelism::workers_for(
    std::size_t candidate_count) const noexcept {
  const std::size_t resolved = resolve();
  if (candidate_count <= 1) return 1;
  return resolved < candidate_count ? resolved : candidate_count;
}

std::vector<ChunkRange> static_chunks(std::size_t count, std::size_t workers) {
  NUSYS_REQUIRE(workers >= 1, "static_chunks: worker count must be positive");
  std::vector<ChunkRange> chunks;
  chunks.reserve(workers);
  const std::size_t base = count / workers;
  const std::size_t rem = count % workers;
  std::size_t begin = 0;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t size = base + (w < rem ? 1 : 0);
    chunks.push_back({begin, begin + size});
    begin += size;
  }
  return chunks;
}

struct ThreadPool::State {
  std::mutex mutex;
  std::condition_variable work_ready;
  std::deque<std::function<void()>> queue;
  std::vector<std::thread> threads;
  bool stopping = false;

  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_ready.wait(lock, [&] { return stopping || !queue.empty(); });
        if (queue.empty()) return;  // stopping and drained.
        task = std::move(queue.front());
        queue.pop_front();
      }
      task();
    }
  }
};

ThreadPool::ThreadPool(std::size_t thread_count) : state_(new State) {
  const std::size_t n = thread_count == 0 ? 1 : thread_count;
  state_->threads.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    state_->threads.emplace_back(&State::worker_loop, state_);
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(state_->mutex);
    state_->stopping = true;
  }
  state_->work_ready.notify_all();
  for (auto& t : state_->threads) t.join();
  delete state_;
}

std::size_t ThreadPool::thread_count() const noexcept {
  return state_->threads.size();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(state_->mutex);
    NUSYS_REQUIRE(!state_->stopping, "ThreadPool: submit after shutdown");
    state_->queue.push_back(std::move(task));
  }
  state_->work_ready.notify_one();
}

ThreadPool& shared_search_pool() {
  // One fewer thread than the hardware offers: the caller of run_chunked()
  // always works a chunk itself. Never zero, so that chunk tasks still
  // drain on single-core hosts where more workers than cores were
  // requested (they simply run one after another).
  static ThreadPool pool([] {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 1 ? static_cast<std::size_t>(hw - 1) : std::size_t{1};
  }());
  return pool;
}

void run_chunked(
    std::size_t count, std::size_t workers,
    const std::function<void(std::size_t worker, std::size_t begin,
                             std::size_t end)>& body) {
  if (workers <= 1) {
    body(0, 0, count);  // Exact legacy path: no pool, no locks.
    return;
  }
  const auto chunks = static_chunks(count, workers);

  std::mutex mutex;
  std::condition_variable all_done;
  std::size_t pending = chunks.size() - 1;
  std::exception_ptr first_error;
  std::size_t first_error_worker = chunks.size();

  auto record_error = [&](std::size_t worker) {
    const std::lock_guard<std::mutex> lock(mutex);
    if (worker < first_error_worker) {
      first_error_worker = worker;
      first_error = std::current_exception();
    }
  };

  for (std::size_t w = 1; w < chunks.size(); ++w) {
    shared_search_pool().submit([&, w] {
      try {
        body(w, chunks[w].begin, chunks[w].end);
      } catch (...) {
        record_error(w);
      }
      {
        // Notify while still holding the mutex: the waiter cannot return
        // from wait() (and destroy the stack-allocated condvar) until this
        // worker releases the lock, by which point it is done signalling.
        const std::lock_guard<std::mutex> lock(mutex);
        --pending;
        all_done.notify_one();
      }
    });
  }
  try {
    body(0, chunks[0].begin, chunks[0].end);
  } catch (...) {
    record_error(0);
  }
  {
    std::unique_lock<std::mutex> lock(mutex);
    all_done.wait(lock, [&] { return pending == 0; });
    if (first_error) std::rethrow_exception(first_error);
  }
}

}  // namespace nusys
