#include "support/env.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

#include "support/errors.hpp"

namespace nusys {

std::optional<bool> parse_env_flag(const char* name, const char* text) {
  if (text == nullptr || *text == '\0') return std::nullopt;
  if (std::strcmp(text, "0") == 0) return false;
  if (std::strcmp(text, "1") == 0) return true;
  throw DomainError(std::string(name) + "='" + text +
                    "' is not a valid flag value; use 1 (on), 0 (off) or "
                    "leave it unset");
}

std::optional<std::size_t> parse_env_bytes(const char* name,
                                           const char* text) {
  if (text == nullptr || *text == '\0') return std::nullopt;
  for (const char* c = text; *c != '\0'; ++c) {
    if (*c < '0' || *c > '9') {
      throw DomainError(std::string(name) + "='" + text +
                        "' is not a valid byte count; use a plain "
                        "non-negative decimal number of bytes (no suffixes)");
    }
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text, &end, 10);
  if (errno == ERANGE ||
      parsed > std::numeric_limits<std::size_t>::max()) {
    throw DomainError(std::string(name) + "='" + text +
                      "' overflows the byte-count range");
  }
  return static_cast<std::size_t>(parsed);
}

bool env_flag(const char* name) {
  return parse_env_flag(name, std::getenv(name)).value_or(false);
}

std::size_t env_bytes(const char* name, std::size_t fallback) {
  return parse_env_bytes(name, std::getenv(name)).value_or(fallback);
}

}  // namespace nusys
