// Error types and contract-checking macros used across the nusys library.
//
// The library distinguishes three failure classes:
//   * ContractError  — a caller violated a documented precondition. These are
//     programming errors; the message carries the failed expression and
//     source location.
//   * DomainError    — a semantically invalid model was supplied (e.g. a
//     recurrence that fails the canonic-form conditions CA1..CA4). These are
//     expected, reportable failures of user input.
//   * SearchFailure  — a synthesis search was exhausted without finding a
//     feasible solution (e.g. no timing function exists for a dependence
//     matrix within the coefficient bound). Callers usually handle these by
//     widening the search or choosing another interconnect, per Sec. II-B of
//     the paper.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace nusys {

/// Base class for all nusys exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A documented precondition was violated by the caller.
class ContractError : public Error {
 public:
  explicit ContractError(const std::string& what) : Error(what) {}
};

/// The supplied model (recurrence, loop nest, module system, ...) is invalid.
class DomainError : public Error {
 public:
  explicit DomainError(const std::string& what) : Error(what) {}
};

/// A bounded synthesis search found no feasible solution.
class SearchFailure : public Error {
 public:
  explicit SearchFailure(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_contract_error(std::string_view expr,
                                       std::string_view file, int line,
                                       std::string_view message);
[[noreturn]] void throw_domain_error(std::string_view file, int line,
                                     std::string_view message);
}  // namespace detail

}  // namespace nusys

/// Precondition check: throws nusys::ContractError when `expr` is false.
#define NUSYS_REQUIRE(expr, message)                                       \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::nusys::detail::throw_contract_error(#expr, __FILE__, __LINE__,     \
                                            (message));                    \
    }                                                                      \
  } while (false)

/// Model-validity check: throws nusys::DomainError when `expr` is false.
#define NUSYS_VALIDATE(expr, message)                                      \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::nusys::detail::throw_domain_error(__FILE__, __LINE__, (message));  \
    }                                                                      \
  } while (false)
