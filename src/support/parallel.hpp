// Fixed-size thread pool and static-chunking helpers for the exhaustive
// synthesis searches.
//
// Every search in nusys enumerates a finite, canonically ordered candidate
// list (a coefficient cube, or the first module's candidate schedules /
// space matrices). Parallelism therefore takes one shape everywhere: split
// the candidate range into `workers` contiguous chunks, let each worker
// scan its chunk with purely local state, and merge the per-worker partial
// results *in worker order*. Because chunks are contiguous and the merge
// preserves worker order, the merged result visits candidates in exactly
// the sequential order — which is what makes parallel output bit-identical
// to the sequential search (see docs/METHODOLOGY.md, "Parallel search &
// determinism").
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace nusys {

/// Degree of parallelism of an exhaustive search.
struct SearchParallelism {
  /// Worker count. 0 = use the hardware concurrency; 1 = the exact legacy
  /// sequential code path (no pool involvement, everything on the caller's
  /// thread).
  std::size_t threads = 0;

  /// Resolved worker count: `threads`, or the hardware concurrency when
  /// `threads` is 0 (never less than 1).
  [[nodiscard]] std::size_t resolve() const noexcept;

  /// Worker count clamped to the candidate count (a chunk per worker must
  /// be non-empty); always at least 1.
  [[nodiscard]] std::size_t workers_for(
      std::size_t candidate_count) const noexcept;
};

/// Contiguous candidate subrange [begin, end) assigned to one worker.
struct ChunkRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
};

/// Splits [0, count) into `workers` contiguous, balanced chunks (sizes
/// differ by at most one; earlier chunks get the remainder). `workers`
/// must be positive; chunks may be empty when workers > count.
[[nodiscard]] std::vector<ChunkRange> static_chunks(std::size_t count,
                                                    std::size_t workers);

/// A fixed-size pool of worker threads consuming a FIFO task queue.
///
/// The pool is deliberately minimal: the searches only ever submit one
/// batch of independent chunk tasks and then join, so there is no need for
/// futures, stealing, or priorities. Tasks must not throw out of the pool
/// thread — run_chunked() wraps bodies and routes exceptions back to the
/// caller.
class ThreadPool {
 public:
  /// Starts `thread_count` worker threads (at least 1).
  explicit ThreadPool(std::size_t thread_count);

  /// Joins all workers; pending tasks are drained first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept;

  /// Enqueues one task. Never blocks.
  void submit(std::function<void()> task);

 private:
  struct State;
  State* state_;  // Pimpl keeps <thread>/<mutex> out of the public header.
};

/// The process-wide pool the searches share, sized to the hardware
/// concurrency. Lazily started on first use and alive for the remainder of
/// the process.
[[nodiscard]] ThreadPool& shared_search_pool();

/// Runs `body(worker, begin, end)` over the static chunking of
/// [0, count) into `workers` chunks.
///
/// With workers <= 1 the body runs inline on the calling thread over the
/// whole range — the exact legacy sequential path, touching no pool or
/// synchronization machinery. Otherwise chunk 0 runs on the calling thread
/// and the remaining chunks on shared_search_pool(); the call returns when
/// every chunk is done. The first exception (by worker index) is rethrown
/// on the caller.
void run_chunked(
    std::size_t count, std::size_t workers,
    const std::function<void(std::size_t worker, std::size_t begin,
                             std::size_t end)>& body);

}  // namespace nusys
