// Canonical design cache: a thread-safe in-memory LRU keyed by printable
// canonical-form digests (ir/canonical.hpp), with an optional on-disk
// snapshot so synthesized designs survive process restarts.
//
// The cache stores opaque string payloads — the synth layer owns the
// encoding of winning (T, S, K) schedules and module designs
// (synth/design_cache.hpp) and *always* re-validates a decoded payload
// against the concrete problem instance before reusing it, so a stale,
// truncated or corrupted entry can never produce a wrong design: it is
// rejected, counted, and the problem is re-synthesized from scratch.
// Persisted records carry an FNV-1a checksum; records that fail to parse
// or verify at load are dropped and counted in `corrupt_entries`.
//
// All operations are mutex-serialized: the batch synthesis driver
// (synth/batch.hpp) shares one cache across the PR 1 thread pool.
#pragma once

#include <cstddef>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace nusys {

/// Lifetime counters of one cache. `hits`/`misses` count lookups,
/// `validation_failures` counts hits whose payload the caller rejected
/// (reported via note_validation_failure), `corrupt_entries` counts
/// on-disk records dropped at load time.
struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t insertions = 0;
  std::size_t evictions = 0;
  std::size_t validation_failures = 0;
  std::size_t corrupt_entries = 0;
  std::size_t loaded_entries = 0;  ///< Records restored from disk.

  friend bool operator==(const CacheStats& a, const CacheStats& b) = default;
};

/// Construction parameters of a DesignCache.
struct CacheConfig {
  /// Maximum resident entries; inserting beyond it evicts the least
  /// recently used entry. 0 = unbounded.
  std::size_t capacity = 128;
  /// Snapshot file path; loaded on construction, written by flush() and
  /// the destructor. Empty = in-memory only.
  std::string path;
};

/// Process-global listener invoked with the key of every DesignCache
/// entry that is *replaced* (an insert over an existing key), *rejected*
/// (failed the caller's re-validation) or *evicted* (LRU pressure) — the
/// lifecycle events after which artifacts derived from the cached design
/// (e.g. compiled wavefront plans, systolic/plan_cache.hpp) must not be
/// served again. Invoked outside the cache mutex. A plain function
/// pointer so registration at static-initialization time is safe.
using CacheReplacementListener = void (*)(const std::string& key);
void set_cache_replacement_listener(CacheReplacementListener listener) noexcept;

/// Thread-safe string-to-string LRU cache with checksummed persistence.
class DesignCache {
 public:
  explicit DesignCache(CacheConfig config = {});

  /// Flushes to `config.path` (best effort) and releases the cache.
  ~DesignCache();

  DesignCache(const DesignCache&) = delete;
  DesignCache& operator=(const DesignCache&) = delete;

  /// The payload stored under `key`, refreshing its recency; nullopt on a
  /// miss. Counts exactly one hit or miss.
  [[nodiscard]] std::optional<std::string> lookup(const std::string& key);

  /// True when `key` is resident. Counts nothing and does not refresh
  /// recency.
  [[nodiscard]] bool contains(const std::string& key) const;

  /// Inserts or overwrites `key`, making it most recent; evicts the LRU
  /// entry when the capacity is exceeded.
  void insert(const std::string& key, std::string payload);

  /// Records that a looked-up payload failed the caller's re-validation
  /// against the concrete instance, and drops the entry so the follow-up
  /// insert starts fresh.
  void reject(const std::string& key);

  /// Writes the snapshot to `config.path` (no-op when empty). Returns
  /// false when the file could not be written.
  bool flush();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] CacheStats stats() const;
  void clear();

 private:
  /// `replaced`, when non-null, collects the keys whose previous payload
  /// this call displaced or evicted; the public entry points fire the
  /// replacement listener for them after releasing the mutex.
  void insert_locked(const std::string& key, std::string payload,
                     bool count_insertion,
                     std::vector<std::string>* replaced);
  void load_locked();

  mutable std::mutex mutex_;
  CacheConfig config_;
  /// Front = most recently used; each node owns (key, payload).
  std::list<std::pair<std::string, std::string>> entries_;
  std::unordered_map<std::string, decltype(entries_)::iterator> index_;
  CacheStats stats_;
};

}  // namespace nusys
