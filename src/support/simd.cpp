#include "support/simd.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "support/checked.hpp"
#include "support/env.hpp"

namespace nusys::simd {

namespace {

// -1 = no override; 0/1 = forced off/on.
std::atomic<int> g_override{-1};

#if defined(__GNUC__) || defined(__clang__)
#define NUSYS_SIMD_VECTOR_EXT 1
// The helpers below pass vector types by value. All of them are internal
// to this translation unit, so the "vector ABI without AVX" note is moot;
// without -mavx the compiler simply splits each 4-lane op into two
// 2-lane ones.
#pragma GCC diagnostic ignored "-Wpsabi"
// aligned(8): loads/stores through these types only assume Value
// alignment, so any column offset is admissible.
typedef std::uint64_t U64x4 __attribute__((vector_size(32), aligned(8)));
typedef std::int64_t S64x4 __attribute__((vector_size(32), aligned(8)));

// The repo ships one portable binary, so the vector bodies are compiled
// once per ISA level and dispatched at load time (glibc ifunc): baseline
// x86-64 has no 64-bit lane multiply at all, AVX2 synthesizes it from
// 32-bit halves, and x86-64-v4 (AVX-512DQ) has a native vpmullq. On
// non-x86 or non-ELF targets the plain definition is the one portable
// body GCC vectorizes as well as the target allows.
#if defined(__x86_64__) && defined(__gnu_linux__) && !defined(__clang__)
#define NUSYS_SIMD_CLONES \
  __attribute__((target_clones("arch=x86-64-v4", "avx2", "default")))
#else
#define NUSYS_SIMD_CLONES
#endif

S64x4 load(const Value* p) {
  S64x4 v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void store(Value* p, S64x4 v) { std::memcpy(p, &v, sizeof(v)); }

// |x| <= 2^31 - 1 per factor guarantees |product| < 2^62: no overflow.
constexpr Value kMulGuard = 0x7fffffff;

/// Vector body of mul_add_checked over the 4-lane-aligned prefix. Faults
/// (a factor outside the no-overflow envelope, or the final add wrapping)
/// are OR-accumulated across the whole range and checked ONCE at the end
/// — a per-block check would serialize every iteration on a lane
/// extraction. Returns false when any lane faulted, in which case the
/// caller recomputes the whole range on the scalar checked path (throwing
/// at the same element with the same message as the scalar loop; the
/// partial vector stores are never observed because the run aborts).
/// *done receives the prefix length handled on success.
NUSYS_SIMD_CLONES
bool mul_add_body(const Value* c, const Value* a, const Value* b,
                  Value* outs, std::size_t len, std::size_t* done) {
  const U64x4 guard = {kMulGuard, kMulGuard, kMulGuard, kMulGuard};
  const U64x4 two_guard = guard + guard;
  U64x4 fault = {0, 0, 0, 0};
  std::size_t i = 0;
  for (; i + kLanes <= len; i += kLanes) {
    const S64x4 va = load(a + i);
    const S64x4 vb = load(b + i);
    const S64x4 vc = load(c + i);
    // v in [-kMulGuard, kMulGuard] iff (u64)v + kMulGuard <= 2*kMulGuard.
    fault |= (((U64x4)va + guard) > two_guard) |
             (((U64x4)vb + guard) > two_guard);
    // In-envelope lanes multiply exactly; out-of-envelope lanes produce
    // garbage that the fault bit already discards.
    const S64x4 prod = (S64x4)((U64x4)va * (U64x4)vb);
    const S64x4 sum = (S64x4)((U64x4)vc + (U64x4)prod);
    // Signed-add wraparound: operands agree in sign, result disagrees.
    fault |= (U64x4)(((vc ^ sum) & (prod ^ sum)) >> 63);
    store(outs + i, sum);
  }
  *done = i;
  return (fault[0] | fault[1] | fault[2] | fault[3]) == 0;
}

/// Vector body of sw_cell_max_checked, same fault protocol: the three
/// checked ops accumulate their wraparound masks, one verdict at the end.
NUSYS_SIMD_CLONES
bool sw_cell_max_body(const Value* h, const Value* score, const Value* p,
                      const Value* q, Value gap, Value* outs,
                      std::size_t len, std::size_t* done) {
  const S64x4 vgap = {gap, gap, gap, gap};
  const S64x4 zero = {0, 0, 0, 0};
  U64x4 fault = {0, 0, 0, 0};
  std::size_t i = 0;
  for (; i + kLanes <= len; i += kLanes) {
    const S64x4 vh = load(h + i);
    const S64x4 vs = load(score + i);
    const S64x4 vp = load(p + i);
    const S64x4 vq = load(q + i);
    const S64x4 diag = (S64x4)((U64x4)vh + (U64x4)vs);
    fault |= (U64x4)(((vh ^ diag) & (vs ^ diag)) >> 63);
    const S64x4 up = (S64x4)((U64x4)vp - (U64x4)vgap);
    fault |= (U64x4)(((vp ^ vgap) & (vp ^ up)) >> 63);
    const S64x4 left = (S64x4)((U64x4)vq - (U64x4)vgap);
    fault |= (U64x4)(((vq ^ vgap) & (vq ^ left)) >> 63);
    S64x4 best = diag > up ? diag : up;
    const S64x4 rest = left > zero ? left : zero;
    best = best > rest ? best : rest;
    store(outs + i, best);
  }
  *done = i;
  return (fault[0] | fault[1] | fault[2] | fault[3]) == 0;
}
#endif  // vector extensions

}  // namespace

bool enabled() {
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  static const bool disabled = env_flag("NUSYS_DISABLE_SIMD");
  return !disabled;
}

void set_enabled_override(std::optional<bool> forced) noexcept {
  g_override.store(forced ? (*forced ? 1 : 0) : -1,
                   std::memory_order_relaxed);
}

void mul_add_checked(const Value* c, const Value* a, const Value* b,
                     Value* outs, std::size_t len) {
  std::size_t i = 0;
#ifdef NUSYS_SIMD_VECTOR_EXT
  if (!mul_add_body(c, a, b, outs, len, &i)) i = 0;  // Fault: redo checked.
#endif
  for (; i < len; ++i) {
    outs[i] = checked_add(c[i], checked_mul(a[i], b[i]));
  }
}

void sw_cell_max_checked(const Value* h, const Value* score, const Value* p,
                         const Value* q, Value gap, Value* outs,
                         std::size_t len) {
  std::size_t i = 0;
#ifdef NUSYS_SIMD_VECTOR_EXT
  if (!sw_cell_max_body(h, score, p, q, gap, outs, len, &i)) i = 0;
#endif
  for (; i < len; ++i) {
    const Value d = checked_add(h[i], score[i]);
    const Value u = checked_sub(p[i], gap);
    const Value lf = checked_sub(q[i], gap);
    outs[i] = std::max<Value>(0, std::max(d, std::max(u, lf)));
  }
}

}  // namespace nusys::simd
