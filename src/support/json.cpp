#include "support/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <limits>
#include <set>

namespace nusys {

namespace {

[[noreturn]] void access_error(const std::string& what) {
  throw JsonError("json: " + what, 0);
}

void append_utf8(std::string& out, unsigned long cp, std::size_t offset) {
  if (cp <= 0x7F) {
    out += static_cast<char>(cp);
  } else if (cp <= 0x7FF) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp <= 0xFFFF) {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp <= 0x10FFFF) {
    out += static_cast<char>(0xF0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    throw JsonError("json: escape denotes an invalid code point at offset " +
                        std::to_string(offset),
                    offset);
  }
}

/// Strict recursive-descent JSON parser. Every failure throws JsonError
/// with the byte offset; no partial values escape.
class Parser {
 public:
  Parser(const std::string& text, std::size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  JsonValue document() {
    skip_space();
    JsonValue v = value();
    skip_space();
    if (pos_ != text_.size()) fail("trailing characters after value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw JsonError(
        "json: " + why + " at offset " + std::to_string(pos_),
        pos_);
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  char next() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void expect(char c) {
    if (next() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void skip_space() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume_word(const char* word) {
    std::size_t n = 0;
    while (word[n] != '\0') ++n;
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue value() {
    if (depth_ > max_depth_) fail("nesting deeper than the allowed limit");
    const char c = peek();
    switch (c) {
      case '{': return object();
      case '[': return array();
      case '"': return JsonValue(string_literal());
      case 't':
        if (consume_word("true")) return JsonValue(true);
        fail("invalid literal");
      case 'f':
        if (consume_word("false")) return JsonValue(false);
        fail("invalid literal");
      case 'n':
        if (consume_word("null")) return JsonValue();
        fail("invalid literal");
      default: return number();
    }
  }

  JsonValue object() {
    ++depth_;
    expect('{');
    JsonValue::Object members;
    std::set<std::string> keys;
    skip_space();
    if (peek() == '}') {
      ++pos_;
    } else {
      for (;;) {
        skip_space();
        if (peek() != '"') fail("expected a string key");
        std::string key = string_literal();
        if (!keys.insert(key).second) fail("duplicate key '" + key + "'");
        skip_space();
        expect(':');
        skip_space();
        members.emplace_back(std::move(key), value());
        skip_space();
        const char c = next();
        if (c == '}') break;
        if (c != ',') {
          --pos_;
          fail("expected ',' or '}'");
        }
      }
    }
    --depth_;
    JsonValue v;
    for (auto& [key, member] : members) v.set(std::move(key), std::move(member));
    return v;
  }

  JsonValue array() {
    ++depth_;
    expect('[');
    JsonValue::Array elements;
    skip_space();
    if (peek() == ']') {
      ++pos_;
    } else {
      for (;;) {
        skip_space();
        elements.push_back(value());
        skip_space();
        const char c = next();
        if (c == ']') break;
        if (c != ',') {
          --pos_;
          fail("expected ',' or ']'");
        }
      }
    }
    --depth_;
    return JsonValue(std::move(elements));
  }

  unsigned long hex4() {
    unsigned long cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = next();
      cp <<= 4;
      if (c >= '0' && c <= '9') {
        cp |= static_cast<unsigned long>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        cp |= static_cast<unsigned long>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        cp |= static_cast<unsigned long>(c - 'A' + 10);
      } else {
        --pos_;
        fail("expected a hex digit in \\u escape");
      }
    }
    return cp;
  }

  std::string string_literal() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("raw control character in string (use an escape)");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      switch (next()) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned long cp = hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (next() != '\\' || next() != 'u') {
              fail("high surrogate not followed by \\u low surrogate");
            }
            const unsigned long lo = hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) {
              fail("invalid low surrogate in \\u escape pair");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired low surrogate in \\u escape");
          }
          append_utf8(out, cp, pos_);
          break;
        }
        default:
          --pos_;
          fail("unsupported string escape");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      pos_ = start;
      fail("expected a value");
    }
    // Integer part; leading zeros are invalid JSON.
    if (peek() == '0') {
      ++pos_;
      if (std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("leading zeros are not allowed");
      }
    } else {
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    bool integral = true;
    if (peek() == '.') {
      integral = false;
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("expected a digit after the decimal point");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      integral = false;
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("expected a digit in the exponent");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    if (integral) {
      i64 out = 0;
      const auto [ptr, ec] = std::from_chars(first, last, out);
      if (ec == std::errc() && ptr == last) return JsonValue(out);
      // Out of int64 range: fall through to double.
    }
    double out = 0.0;
    const auto [ptr, ec] = std::from_chars(first, last, out);
    if (ec != std::errc() || ptr != last) fail("invalid number");
    return JsonValue(out);
  }

  const std::string& text_;
  std::size_t max_depth_;
  std::size_t depth_ = 0;
  std::size_t pos_ = 0;
};

void dump_value(const JsonValue& v, std::string& out) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull: out += "null"; return;
    case JsonValue::Kind::kBool: out += v.as_bool() ? "true" : "false"; return;
    case JsonValue::Kind::kInt: out += std::to_string(v.as_int()); return;
    case JsonValue::Kind::kDouble: {
      char buf[32];
      const auto [ptr, ec] =
          std::to_chars(buf, buf + sizeof buf, v.as_double());
      if (ec != std::errc()) access_error("double not representable");
      out.append(buf, static_cast<std::size_t>(ptr - buf));
      return;
    }
    case JsonValue::Kind::kString: out += json_quote(v.as_string()); return;
    case JsonValue::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const auto& e : v.as_array()) {
        if (!first) out += ',';
        first = false;
        dump_value(e, out);
      }
      out += ']';
      return;
    }
    case JsonValue::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : v.as_object()) {
        if (!first) out += ',';
        first = false;
        out += json_quote(key);
        out += ':';
        dump_value(member, out);
      }
      out += '}';
      return;
    }
  }
}

}  // namespace

JsonValue::JsonValue(std::size_t v) : kind_(Kind::kInt) {
  if (v > static_cast<std::size_t>(std::numeric_limits<i64>::max())) {
    access_error("size_t value exceeds int64");
  }
  int_ = static_cast<i64>(v);
}

JsonValue::JsonValue(Object o) : kind_(Kind::kObject) {
  for (auto& [key, member] : o) set(std::move(key), std::move(member));
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) {
    access_error(std::string("expected bool, have ") + json_kind_name(kind_));
  }
  return bool_;
}

i64 JsonValue::as_int() const {
  if (kind_ != Kind::kInt) {
    access_error(std::string("expected integer, have ") +
                 json_kind_name(kind_));
  }
  return int_;
}

double JsonValue::as_double() const {
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  if (kind_ != Kind::kDouble) {
    access_error(std::string("expected number, have ") +
                 json_kind_name(kind_));
  }
  return double_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) {
    access_error(std::string("expected string, have ") +
                 json_kind_name(kind_));
  }
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) {
    access_error(std::string("expected array, have ") + json_kind_name(kind_));
  }
  return array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) {
    access_error(std::string("expected object, have ") +
                 json_kind_name(kind_));
  }
  return object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  for (const auto& [name, member] : as_object()) {
    if (name == key) return &member;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* member = find(key);
  if (member == nullptr) access_error("missing member '" + key + "'");
  return *member;
}

void JsonValue::set(std::string key, JsonValue value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject) {
    access_error(std::string("set() on ") + json_kind_name(kind_));
  }
  for (const auto& [name, member] : object_) {
    (void)member;
    if (name == key) access_error("duplicate member '" + key + "'");
  }
  object_.emplace_back(std::move(key), std::move(value));
}

void JsonValue::push_back(JsonValue value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  if (kind_ != Kind::kArray) {
    access_error(std::string("push_back() on ") + json_kind_name(kind_));
  }
  array_.push_back(std::move(value));
}

std::string JsonValue::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

JsonValue JsonValue::parse(const std::string& text, std::size_t max_depth) {
  return Parser(text, max_depth).document();
}

bool operator==(const JsonValue& a, const JsonValue& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case JsonValue::Kind::kNull: return true;
    case JsonValue::Kind::kBool: return a.bool_ == b.bool_;
    case JsonValue::Kind::kInt: return a.int_ == b.int_;
    case JsonValue::Kind::kDouble: return a.double_ == b.double_;
    case JsonValue::Kind::kString: return a.string_ == b.string_;
    case JsonValue::Kind::kArray: return a.array_ == b.array_;
    case JsonValue::Kind::kObject: return a.object_ == b.object_;
  }
  return false;
}

const char* json_kind_name(JsonValue::Kind kind) {
  switch (kind) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "bool";
    case JsonValue::Kind::kInt: return "integer";
    case JsonValue::Kind::kDouble: return "double";
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kArray: return "array";
    case JsonValue::Kind::kObject: return "object";
  }
  return "?";
}

std::string json_quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::map<std::string, std::string> parse_flat_json_object(
    const std::string& text) {
  const JsonValue doc = JsonValue::parse(text);
  if (!doc.is_object()) {
    throw JsonError("batch JSONL: a line must be one JSON object", 0);
  }
  std::map<std::string, std::string> out;
  for (const auto& [key, member] : doc.as_object()) {
    std::string value;
    switch (member.kind()) {
      case JsonValue::Kind::kBool: value = member.as_bool() ? "true" : "false";
        break;
      case JsonValue::Kind::kInt: value = std::to_string(member.as_int());
        break;
      case JsonValue::Kind::kString: value = member.as_string(); break;
      case JsonValue::Kind::kNull:
      case JsonValue::Kind::kDouble:
        throw JsonError("batch JSONL: field '" + key +
                            "' must be a string, integer or boolean",
                        0);
      case JsonValue::Kind::kArray:
      case JsonValue::Kind::kObject:
        throw JsonError("batch JSONL: nested values are not supported "
                        "(field '" + key + "')",
                        0);
    }
    out.emplace(key, std::move(value));
  }
  return out;
}

}  // namespace nusys
