#include "support/json.hpp"

#include <cctype>

#include "support/errors.hpp"

namespace nusys {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::map<std::string, std::string> object() {
    skip_space();
    expect('{');
    std::map<std::string, std::string> out;
    skip_space();
    if (peek() == '}') {
      ++pos_;
    } else {
      for (;;) {
        skip_space();
        const std::string key = string_literal();
        skip_space();
        expect(':');
        skip_space();
        const std::string value = scalar();
        if (!out.emplace(key, value).second) {
          fail("duplicate key '" + key + "'");
        }
        skip_space();
        const char c = next();
        if (c == '}') break;
        if (c != ',') fail("expected ',' or '}'");
      }
    }
    skip_space();
    if (pos_ != text_.size()) fail("trailing characters after object");
    return out;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw DomainError("batch JSONL: " + why + " at offset " +
                      std::to_string(pos_) + " in: " + text_);
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  char next() {
    if (pos_ >= text_.size()) fail("unexpected end of line");
    return text_[pos_++];
  }

  void expect(char c) {
    if (next() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string string_literal() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = next();
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      switch (next()) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        default: fail("unsupported string escape");
      }
    }
  }

  std::string scalar() {
    const char c = peek();
    if (c == '"') return string_literal();
    if (c == '{' || c == '[') fail("nested values are not supported");
    std::string word;
    while (pos_ < text_.size() && text_[pos_] != ',' && text_[pos_] != '}' &&
           !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      word += text_[pos_++];
    }
    if (word == "true" || word == "false") return word;
    if (word.empty()) fail("expected a value");
    std::size_t i = (word[0] == '-') ? 1 : 0;
    if (i == word.size()) fail("invalid number '" + word + "'");
    for (; i < word.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(word[i]))) {
        fail("unsupported value '" + word + "' (strings need quotes; only "
             "integers and booleans are bare)");
      }
    }
    return word;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::map<std::string, std::string> parse_flat_json_object(
    const std::string& text) {
  return Parser(text).object();
}

}  // namespace nusys
