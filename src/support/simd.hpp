// Portable SIMD wrappers for the compiled wavefront kernels.
//
// The compiled executor's per-front loops stream over contiguous operand
// columns (designs/uniform_compiled.hpp), so the integer semantics of the
// long-front families (conv, matmul, Smith-Waterman) vectorize — but every
// arithmetic op in this codebase is overflow-*checked* i64 (throws
// ContractError), and that contract must survive vectorization bit for
// bit. The kernels here keep it by construction:
//
//   * lane arithmetic runs on unsigned lanes (defined wraparound — signed
//     overflow would be UB under the sanitizer CI jobs), with the sign
//     trick detecting add/sub overflow after the fact:
//     add overflows  iff  ((a ^ r) & (b ^ r)) < 0   (r = wrapped sum)
//     sub overflows  iff  ((a ^ b) & (a ^ r)) < 0   (r = wrapped diff)
//   * multiplication has no cheap vector overflow test, so blocks are
//     admitted by a magnitude guard (|a|, |b| <= 2^31 - 1 can never
//     overflow the product); a block failing any guard falls back to the
//     scalar checked ops *in lane order*, reproducing the exact throw the
//     scalar loop would have raised.
//
// Vector lanes use the GCC/Clang vector extensions (portable across
// x86/ARM/RISC-V — the compiler lowers to whatever the target has); other
// compilers get the scalar loop. Runtime selection: enabled() honours the
// NUSYS_DISABLE_SIMD=1 ablation flag (read once) plus a programmatic
// override for tests and benches; the differential CI job reruns every
// suite with the flag set, pinning vector == scalar == interpretive.
#pragma once

#include <cstdint>
#include <optional>

#include "linalg/vec.hpp"

namespace nusys::simd {

using Value = i64;

/// Lanes per vector block; kernels process [len / kLanes] blocks plus a
/// scalar tail.
inline constexpr std::size_t kLanes = 4;

/// False when NUSYS_DISABLE_SIMD=1 (or a test override disables it): the
/// compiled executor then skips every compute_block hook and runs the
/// per-point scalar loops instead. Throws DomainError on a malformed
/// NUSYS_DISABLE_SIMD value.
[[nodiscard]] bool enabled();

/// Test/bench hook: force SIMD on or off regardless of the environment;
/// nullopt restores the environment's choice.
void set_enabled_override(std::optional<bool> forced) noexcept;

/// outs[i] = checked_add(c[i], checked_mul(a[i], b[i])) for i in [0, len)
/// — the conv / matmul inner step. Throws ContractError on overflow with
/// the same message, at the same element, as the scalar loop.
void mul_add_checked(const Value* c, const Value* a, const Value* b,
                     Value* outs, std::size_t len);

/// outs[i] = max(0, max(checked_add(h[i], score[i]),
///                      max(checked_sub(p[i], gap),
///                          checked_sub(q[i], gap))))
/// — the banded Smith-Waterman cell. Same overflow contract as above.
void sw_cell_max_checked(const Value* h, const Value* score, const Value* p,
                         const Value* q, Value gap, Value* outs,
                         std::size_t len);

}  // namespace nusys::simd
