// Deterministic pseudo-random number generation for tests and benchmarks.
//
// Workload generators must be reproducible across runs and platforms, so we
// ship a fixed xoshiro256** implementation instead of relying on the
// standard library's unspecified distributions.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "support/checked.hpp"

namespace nusys {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Next raw 64-bit value.
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] i64 uniform(i64 lo, i64 hi);

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept;

  /// `count` uniform integers in [lo, hi].
  [[nodiscard]] std::vector<i64> uniform_vector(std::size_t count, i64 lo,
                                                i64 hi);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform(0, static_cast<i64>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace nusys
