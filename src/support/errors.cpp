#include "support/errors.hpp"

#include <sstream>

namespace nusys::detail {

[[noreturn]] void throw_contract_error(std::string_view expr,
                                       std::string_view file, int line,
                                       std::string_view message) {
  std::ostringstream os;
  os << "contract violation: " << message << " [failed: " << expr << " at "
     << file << ':' << line << ']';
  throw ContractError(os.str());
}

[[noreturn]] void throw_domain_error(std::string_view file, int line,
                                     std::string_view message) {
  std::ostringstream os;
  os << "invalid model: " << message << " [" << file << ':' << line << ']';
  throw DomainError(os.str());
}

}  // namespace nusys::detail
