// Minimal command-line flag parsing for the nusys CLI and tools.
//
// Supports "--name value" and "--name=value" long flags plus bare
// positional words. Unknown flags are an error so typos fail loudly.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "support/checked.hpp"

namespace nusys {

/// Parsed command line: flag -> value plus positional arguments.
class ArgMap {
 public:
  /// Parses argv[1..]; `known_flags` is the complete allowed value-taking
  /// flag set and `known_bool_flags` the switches that take no value (all
  /// names without the leading dashes). Throws ContractError on unknown
  /// flags or a value flag missing its value.
  ArgMap(int argc, const char* const* argv,
         const std::set<std::string>& known_flags,
         const std::set<std::string>& known_bool_flags = {});

  [[nodiscard]] bool has(const std::string& name) const;

  /// String value of a flag, or `fallback` when absent.
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;

  /// Integer value of a flag, or `fallback`; throws ContractError when the
  /// value does not parse as an integer.
  [[nodiscard]] i64 get_int(const std::string& name, i64 fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace nusys
