// Exact rational arithmetic on int64 numerator/denominator.
//
// Used wherever the synthesis algebra needs exact division: inverting the
// transformation matrix [T; S], solving small rational linear systems, and
// expressing data-stream *speeds* (cells per cycle), which are rationals like
// 1/2 in Kung's W1 design.
#pragma once

#include <compare>
#include <iosfwd>
#include <string>

#include "support/checked.hpp"

namespace nusys {

/// An exact rational number. Always stored normalized: denominator > 0 and
/// gcd(|num|, den) == 1. Arithmetic is overflow-checked.
class Fraction {
 public:
  /// Zero.
  constexpr Fraction() noexcept = default;

  /// Integer value `n` (denominator 1).
  constexpr Fraction(i64 n) noexcept : num_(n) {}  // NOLINT(google-explicit-constructor)

  /// `n / d`; throws ContractError if `d == 0`.
  Fraction(i64 n, i64 d);

  [[nodiscard]] constexpr i64 num() const noexcept { return num_; }
  [[nodiscard]] constexpr i64 den() const noexcept { return den_; }

  [[nodiscard]] bool is_integer() const noexcept { return den_ == 1; }
  [[nodiscard]] bool is_zero() const noexcept { return num_ == 0; }

  /// The integer value; throws ContractError unless is_integer().
  [[nodiscard]] i64 as_integer() const;

  /// Closest double approximation (for reporting only).
  [[nodiscard]] double as_double() const noexcept {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  [[nodiscard]] Fraction operator-() const;
  Fraction& operator+=(const Fraction& rhs);
  Fraction& operator-=(const Fraction& rhs);
  Fraction& operator*=(const Fraction& rhs);
  /// Throws ContractError when dividing by zero.
  Fraction& operator/=(const Fraction& rhs);

  friend Fraction operator+(Fraction a, const Fraction& b) { return a += b; }
  friend Fraction operator-(Fraction a, const Fraction& b) { return a -= b; }
  friend Fraction operator*(Fraction a, const Fraction& b) { return a *= b; }
  friend Fraction operator/(Fraction a, const Fraction& b) { return a /= b; }

  friend bool operator==(const Fraction& a, const Fraction& b) noexcept {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend std::strong_ordering operator<=>(const Fraction& a,
                                          const Fraction& b);

  /// Absolute value.
  [[nodiscard]] Fraction abs() const;

  /// "p/q" or just "p" when the value is an integer.
  [[nodiscard]] std::string to_string() const;

 private:
  void normalize();

  i64 num_ = 0;
  i64 den_ = 1;
};

std::ostream& operator<<(std::ostream& os, const Fraction& f);

}  // namespace nusys
