#include "support/rng.hpp"

namespace nusys {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

i64 Rng::uniform(i64 lo, i64 hi) {
  NUSYS_REQUIRE(lo <= hi, "Rng::uniform: empty range");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // Full 64-bit range requested.
    return static_cast<i64>(next_u64());
  }
  // Rejection sampling for an unbiased result.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t draw = next_u64();
  while (draw >= limit) draw = next_u64();
  return lo + static_cast<i64>(draw % span);
}

double Rng::uniform01() noexcept {
  // 53 random mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::vector<i64> Rng::uniform_vector(std::size_t count, i64 lo, i64 hi) {
  std::vector<i64> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(uniform(lo, hi));
  return out;
}

}  // namespace nusys
