#include "support/telemetry.hpp"

#include <chrono>

namespace nusys {

double StageTelemetry::candidates_per_second() const noexcept {
  if (wall_seconds <= 0.0) return 0.0;
  return static_cast<double>(examined) / wall_seconds;
}

bool StageTelemetry::touched_cache() const noexcept {
  return cache_hits > 0 || cache_misses > 0 || cache_evictions > 0;
}

const StageTelemetry* SearchTelemetry::find(const std::string& stage) const {
  for (const auto& s : stages) {
    if (s.stage == stage) return &s;
  }
  return nullptr;
}

std::size_t SearchTelemetry::total_examined() const noexcept {
  std::size_t acc = 0;
  for (const auto& s : stages) acc += s.examined;
  return acc;
}

double SearchTelemetry::total_seconds() const noexcept {
  double acc = 0.0;
  for (const auto& s : stages) acc += s.wall_seconds;
  return acc;
}

std::size_t SearchTelemetry::total_cache_hits() const noexcept {
  std::size_t acc = 0;
  for (const auto& s : stages) acc += s.cache_hits;
  return acc;
}

std::size_t SearchTelemetry::total_cache_misses() const noexcept {
  std::size_t acc = 0;
  for (const auto& s : stages) acc += s.cache_misses;
  return acc;
}

namespace {

long long now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

WallTimer::WallTimer() : start_ns_(now_ns()) {}

double WallTimer::seconds() const {
  return static_cast<double>(now_ns() - start_ns_) * 1e-9;
}

}  // namespace nusys
