// Design-space exploration for convolution: every optimal design the
// synthesizer can derive from recurrences (4) and (5), side by side —
// an executable rendering of the paper's Tables 1 and 2.
#include <iostream>

#include "conv/recurrences.hpp"
#include "support/table.hpp"
#include "synth/report.hpp"
#include "synth/synthesizer.hpp"

int main() {
  using namespace nusys;
  constexpr i64 n = 16;
  constexpr i64 s = 4;

  TextTable table({"recurrence", "T", "S", "cells", "streams"});
  for (const auto& rec : {convolution_backward_recurrence(n, s),
                          convolution_forward_recurrence(n, s)}) {
    SynthesisOptions options;
    options.max_designs = 6;
    const auto result =
        synthesize(rec, Interconnect::linear_bidirectional(), options);
    if (!result.found()) continue;
    for (const auto& d : result.designs) {
      table.add_row({rec.name(),
                     d.timing.to_string(rec.domain().names()),
                     d.space.to_string(),
                     std::to_string(d.metrics.cell_count),
                     classify_streams(d)});
    }
  }
  std::cout << table.render();

  std::cout << "\nPaper Table 1 (from recurrence (4)): W2 — y and x move in "
               "the same direction at different speeds, w stays.\n";
  std::cout << "Paper Table 2 (from recurrence (5)): W1 — y and x move in "
               "opposite directions, w stays; R2 — y stays, x and w move in "
               "the same direction at different speeds.\n";
  return 0;
}
