// Matrix-chain parenthesization on both of the paper's DP arrays.
//
// Solves the classic CLRS instance and a larger random chain on the
// figure-1 triangular array (Guibas-Kung-Thompson, ~n²/2 cells) and on the
// paper's new figure-2 array (fewer cells, same completion time), and
// compares cost and results against the sequential O(n³) solver.
#include <iostream>

#include "designs/dp_array.hpp"
#include "dp/sequential.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main() {
  using namespace nusys;

  // The CLRS 15.2 instance: optimal cost 15125.
  const auto textbook = matrix_chain_problem({30, 35, 15, 5, 10, 20, 25});
  const auto baseline = solve_sequential(textbook);
  std::cout << "CLRS matrix chain: sequential optimum c(1,7) = "
            << baseline.at(1, 7) << "\n\n";

  TextTable table({"design", "cells", "first tick", "last tick",
                   "f/h ops", "utilization", "correct"});
  for (const auto& [name, design] :
       {std::pair{"figure 1 (GKT triangular)", dp_fig1_design()},
        std::pair{"figure 2 (new design)", dp_fig2_design()}}) {
    const auto run = run_dp_on_array(textbook, design);
    table.add_row({name, std::to_string(run.cell_count),
                   std::to_string(run.first_tick),
                   std::to_string(run.last_tick),
                   std::to_string(run.compute_ops),
                   std::to_string(run.stats.utilization()),
                   run.table == baseline ? "yes" : "NO"});
  }
  std::cout << table.render() << '\n';

  // A larger random chain: the figure-2 array should use strictly fewer
  // cells at the same completion time.
  Rng rng(7);
  const i64 n = 24;
  const auto big = random_matrix_chain(n, rng);
  const auto f1 = run_dp_on_array(big, dp_fig1_design());
  const auto f2 = run_dp_on_array(big, dp_fig2_design());
  std::cout << "n = " << n << ": figure 1 uses " << f1.cell_count
            << " cells, figure 2 uses " << f2.cell_count
            << " (ratio " << static_cast<double>(f2.cell_count) /
                               static_cast<double>(f1.cell_count)
            << "), both finish at tick " << f1.last_tick << '\n';
  const bool ok = f1.table == solve_sequential(big) && f1.table == f2.table;
  std::cout << "results " << (ok ? "MATCH" : "MISMATCH") << '\n';
  return ok ? 0 : 1;
}
