// Bring your own recurrence: synthesizing a design for a user-defined
// canonic form that appears nowhere in the paper.
//
// The model is a 2-D weighted running reduction
//
//   r_{t,p} = g(r_{t,p-1}, u_{t-1,p}, v_{t-1,p-1}),
//
// i.e. dependences r:(0,1), u:(1,0), v:(1,1) over a t x p box — a shape
// typical of time-recursive filters. The example searches schedules and
// space maps, prints the ranked designs, and verifies the best one with
// the extensional space-time checker.
#include <iostream>

#include "synth/report.hpp"
#include "synth/synthesizer.hpp"
#include "verify/spacetime.hpp"

int main() {
  using namespace nusys;

  DependenceSet deps;
  deps.add("r", IntVec({0, 1}));
  deps.add("u", IntVec({1, 0}));
  deps.add("v", IntVec({1, 1}));
  const CanonicRecurrence rec(
      "time-recursive-filter",
      IndexDomain::box({"t", "p"}, {1, 1}, {32, 8}), std::move(deps));
  std::cout << rec << "\n\n";

  for (const auto& [name, net] :
       {std::pair{"unidirectional", Interconnect::linear_unidirectional()},
        std::pair{"bidirectional", Interconnect::linear_bidirectional()}}) {
    SynthesisOptions options;
    options.max_designs = 2;
    const auto result = synthesize(rec, net, options);
    std::cout << "--- interconnect: " << name << " ---\n";
    if (!result.found()) {
      std::cout << "no feasible design\n\n";
      continue;
    }
    for (const auto& design : result.designs) {
      std::cout << describe_design(design, rec.domain().names());
      const auto report =
          verify_design(rec, design.timing, design.space, design.net);
      std::cout << "  " << report << "\n\n";
      if (!report.ok()) return 1;
    }
  }
  return 0;
}
