// Optimal alphabetic binary trees end to end: the non-uniform pipeline
// facade synthesizes an array design automatically, the mapped executor
// computes the cost table cycle-accurately, and the argmin reconstruction
// recovers the actual tree — plus the recursive-convolution feedback
// analysis from Example 2 of the paper as a bonus.
#include <iostream>

#include "conv/recursive_feasibility.hpp"
#include "designs/dp_array.hpp"
#include "designs/recursive_conv_array.hpp"
#include "dp/reconstruct.hpp"
#include "dp/sequential.hpp"
#include "synth/pipeline.hpp"

namespace {

nusys::NonUniformSpec make_dp_spec(nusys::i64 n) {
  using namespace nusys;
  const auto i = AffineExpr::index(3, 0);
  const auto j = AffineExpr::index(3, 1);
  IndexDomain domain({"i", "j", "k"},
                     {{AffineExpr::constant(3, 1), AffineExpr::constant(3, n)},
                      {i + 1, AffineExpr::constant(3, n)},
                      {i + 1, j - 1}});
  return NonUniformSpec("alphabetic-tree", std::move(domain),
                        {{"c", IntVec({0, 0}), 1}, {"c", IntVec({0, 0}), 0}});
}

}  // namespace

int main() {
  using namespace nusys;

  // Leaves of the alphabetic tree (weights must keep their order).
  const std::vector<i64> leaves{8, 1, 2, 5, 1, 9, 3};
  const auto problem = alphabetic_tree_problem(leaves);
  const i64 n = problem.n;

  // Synthesize an array for this problem size with the one-call facade.
  const auto synth = synthesize_nonuniform(make_dp_spec(n),
                                           Interconnect::figure2());
  if (!synth.found()) {
    std::cerr << "pipeline failed\n";
    return 1;
  }
  std::cout << "pipeline: coarse "
            << synth.coarse.schedule().to_string({"i", "j"})
            << ", module-schedule makespan " << synth.schedule_makespan
            << ", best design uses " << synth.cell_counts.front()
            << " cells\n";

  // Execute on the synthesized array and reconstruct the tree.
  const auto run = run_dp_on_array(problem, synth.best());
  const auto sol = solve_with_splits(problem);
  const bool ok = run.table == sol.cost;
  std::cout << "optimal weighted path length c(1," << n
            << ") = " << run.table.at(1, n) << " (array vs sequential: "
            << (ok ? "MATCH" : "MISMATCH") << ")\n";
  std::cout << "optimal tree: " << render_parenthesization(sol, 1, n)
            << "\n\n";

  // Bonus — Example 2 of the paper: why only the forward convolution
  // recurrence supports the recursive (feedback) variant.
  for (const auto& [name, t] :
       {std::pair{"backward T = i + k ", LinearSchedule(IntVec({1, 1}))},
        std::pair{"forward  T = 2i - k", LinearSchedule(IntVec({2, -1}))}}) {
    const auto f = check_feedback_feasibility(t, 4);
    std::cout << name << ": feedback margin " << f.margin << " -> "
              << (f.feasible ? "feasible" : "infeasible") << '\n';
  }
  const auto fib = run_recursive_convolution_array({1, 1}, {1, 1}, 10);
  std::cout << "feedback array, Fibonacci check: y_10 = " << fib.y.back()
            << " (expected 55)\n";
  return ok && fib.y.back() == 55 ? 0 : 1;
}
