// The full Sec. III/IV pipeline on the paper's second application,
// shortest path, starting from the raw non-uniform specification:
//
//   c(i,j) = min_{i<k<j} ( c(i,k) + c(k,j) ),   c(i,i+1) = hop cost,
//
// This program shows every intermediate artifact the methodology
// produces: the expanded dependence sets, the constant core D^c, the
// coarse timing function, the chain decomposition, the emitted module
// system, the automatically found λ/μ/σ, and finally a cycle-accurate run
// on the figure-2 array.
#include <iostream>

#include "chains/decompose.hpp"
#include "chains/modules_emit.hpp"
#include "designs/dp_array.hpp"
#include "dp/sequential.hpp"
#include "modules/module_schedule.hpp"
#include "schedule/coarse.hpp"
#include "support/rng.hpp"

namespace {

nusys::NonUniformSpec make_dp_spec(nusys::i64 n) {
  using namespace nusys;
  const auto i = AffineExpr::index(3, 0);
  const auto j = AffineExpr::index(3, 1);
  IndexDomain domain({"i", "j", "k"},
                     {{AffineExpr::constant(3, 1), AffineExpr::constant(3, n)},
                      {i + 1, AffineExpr::constant(3, n)},
                      {i + 1, j - 1}});
  // Operand c(i,k): dependence (0, j-k); operand c(k,j): dependence (i-k, 0).
  return NonUniformSpec("shortest-path", std::move(domain),
                        {{"c", IntVec({0, 0}), 1}, {"c", IntVec({0, 0}), 0}});
}

}  // namespace

int main() {
  using namespace nusys;
  const i64 n = 12;

  // --- Step 1: the constant core and the coarse timing function. ---------
  const auto spec = make_dp_spec(n);
  const auto coarse = derive_coarse_timing(spec);
  std::cout << "constant core D^c:";
  for (const auto& d : coarse.core) std::cout << ' ' << d;
  std::cout << "\ncoarse "
            << coarse.schedule().to_string({"i", "j"}) << "\n\n";

  // --- Step 2: chain decomposition at a sample point. ---------------------
  const IntVec sample{2, 9};
  std::cout << decompose_chains(spec, coarse.schedule(), sample) << "\n\n";

  // --- Step 3: emit the module system from the chains. --------------------
  const auto sys = emit_interval_dp_modules(spec, coarse.schedule());
  std::cout << sys << "\n";

  // --- Step 4: search per-module schedules under global constraints. ------
  const auto schedules = find_module_schedules(sys);
  const auto& best = schedules.best();
  std::cout << "module schedules (makespan " << best.makespan << "):\n";
  const std::vector<std::string> names{"i", "j", "k"};
  for (std::size_t m = 0; m < best.schedules.size(); ++m) {
    std::cout << "  " << sys.module(m).name << ": "
              << best.schedules[m].to_string(names) << '\n';
  }
  std::cout << '\n';

  // --- Step 5: run on the figure-2 array, check against sequential. ------
  Rng rng(11);
  const auto problem = random_shortest_path(n, rng);
  const auto run = run_dp_on_array(problem, dp_fig2_design());
  const auto expected = solve_sequential(problem);
  std::cout << "figure-2 run: " << run.cell_count << " cells, finished at "
            << "tick " << run.last_tick << " (= 2(n-1) = " << 2 * (n - 1)
            << "), c(1," << n << ") = " << run.table.at(1, n) << ", results "
            << (run.table == expected ? "MATCH" : "MISMATCH")
            << " the sequential solver\n";
  return run.table == expected ? 0 : 1;
}
