// Quickstart: synthesize systolic designs for convolution from scratch.
//
// This walks the Sec. II pipeline of Guerra & Melhem end to end:
//   1. write the problem as a canonic-form recurrence (constant deps),
//   2. search makespan-optimal timing functions (T·d > 0),
//   3. search space maps on an interconnect (S·D = Δ·K, Π non-singular),
//   4. print the resulting designs with their data-stream behaviour —
// and then actually *runs* the best-known design (Kung's W2) on the
// cycle-accurate engine, checking it against the sequential baseline.
#include <iostream>

#include "conv/convolution.hpp"
#include "conv/recurrences.hpp"
#include "designs/conv_arrays.hpp"
#include "support/rng.hpp"
#include "synth/report.hpp"
#include "synth/synthesizer.hpp"

int main() {
  using namespace nusys;

  constexpr i64 n = 16;  // Input length.
  constexpr i64 s = 4;   // Weight count.

  // Step 1: recurrence (4) of the paper — convolution with the backward
  // accumulation y_{i,k} = y_{i,k-1} + w_{i,k} * x_{i,k}.
  const CanonicRecurrence rec = convolution_backward_recurrence(n, s);
  std::cout << "Input model:\n  " << rec << "\n\n";

  // Steps 2+3: full synthesis on a bidirectional linear array.
  SynthesisOptions options;
  options.max_designs = 4;
  const auto result =
      synthesize(rec, Interconnect::linear_bidirectional(), options);
  if (!result.found()) {
    std::cerr << "synthesis failed\n";
    return 1;
  }
  std::cout << "Optimal makespan: " << result.schedule_search.makespan
            << " ticks; " << result.designs.size()
            << " top designs (of " << result.space_maps_examined
            << " space maps examined):\n\n";
  for (const auto& design : result.designs) {
    std::cout << describe_design(design, rec.domain().names()) << '\n';
  }

  // Step 4: run Kung's W2 (the design the paper derives from this
  // recurrence) on the cycle-accurate engine.
  Rng rng(2024);
  const auto x = rng.uniform_vector(n, -9, 9);
  const auto w = rng.uniform_vector(s, -9, 9);
  const auto run = run_convolution_w2(x, w);
  const auto expected = direct_convolution(x, w);
  std::cout << "W2 simulation: " << run.cell_count << " cells, utilization "
            << run.stats.utilization() << ", results "
            << (run.y == expected ? "MATCH" : "MISMATCH")
            << " the sequential baseline\n";
  return run.y == expected ? 0 : 1;
}
